"""The Inflight Shared Register Buffer (ISRB) -- the paper's contribution.

The ISRB (Section 4.3) is a small fully-associative buffer tracking only the
physical registers that currently have *more than one* sharer.  Each entry
holds the physical register identifier (the CAM tag) and two resettable
up-counters:

* ``referenced`` is incremented every time the register is bypassed, i.e.
  obtained by an instruction *without* going through the free list (move
  elimination or SMB);
* ``committed`` is incremented every time an instruction that overwrites a
  mapping containing the register commits, as long as the register cannot
  be freed yet.

A register can be freed by the reclaiming logic when ``referenced ==
committed``; both counters are then reset and the entry released.

Because ``committed`` only reflects architectural (committed) state, it is
always correct; only ``referenced`` can be polluted by squashed wrong-path
instructions.  Checkpointing the ``referenced`` field alone therefore makes
the whole structure recoverable in a single cycle: on a pipeline flush the
checkpointed ``referenced`` values are restored, and if ``committed`` turns
out to be *greater* than the restored ``referenced`` the register should
already have been freed and is released immediately (Section 4.3.1's
working example, reproduced in this module's unit tests).

Two recovery paths are provided, matching Section 4.1:

* :meth:`checkpoint` / :meth:`restore` implement the branch-checkpoint
  mechanism described above;
* :meth:`flush_to_committed` implements the "squash at Commit" path (used
  for memory-order traps and bypass validation failures) where the tracker
  falls back to the state implied by the committed machine state, which the
  ISRB maintains as the committed image of ``referenced``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tracker import ReclaimDecision, SharingTracker, TrackerConfig


@dataclass(slots=True)
class IsrbEntry:
    """One ISRB entry: the two up-counters plus the committed image of ``referenced``."""

    referenced: int = 0
    committed: int = 0
    referenced_committed: int = 0


@dataclass(frozen=True)
class IsrbConfig:
    """Convenience constructor arguments for a stand-alone ISRB.

    The pipeline configures the ISRB through
    :class:`~repro.core.tracker.TrackerConfig`; this small dataclass exists
    for direct experimentation with the structure itself.
    """

    entries: int | None = 32
    counter_bits: int | None = 3
    checkpoints: int = 8
    num_phys_regs: int = 512

    def to_tracker_config(self) -> TrackerConfig:
        """Convert to the generic tracker configuration."""
        return TrackerConfig(
            scheme="isrb",
            entries=self.entries,
            counter_bits=self.counter_bits,
            checkpoints=self.checkpoints,
            num_phys_regs=self.num_phys_regs,
        )


class InflightSharedRegisterBuffer(SharingTracker):
    """The ISRB register sharing tracker."""

    name = "isrb"
    supports_memory_bypass = True
    supports_move_elimination = True
    checkpoint_recovery = True

    def __init__(self, config: TrackerConfig | IsrbConfig | None = None) -> None:
        if config is None:
            config = IsrbConfig()
        if isinstance(config, IsrbConfig):
            config = config.to_tracker_config()
        super().__init__(config)
        self._entries: dict[int, IsrbEntry] = {}
        self._checkpoints: dict[int, dict[int, int]] = {}
        self._next_checkpoint_id = 0
        if config.scheme == "unlimited":
            self.name = "unlimited"

    # -- capacity helpers ---------------------------------------------------------

    @property
    def capacity(self) -> int | None:
        """Maximum number of simultaneously tracked registers (``None`` = unlimited)."""
        return self.config.entries

    def _counter_limit(self) -> int | None:
        if self.config.counter_bits is None:
            return None
        return (1 << self.config.counter_bits) - 1

    def is_full(self) -> bool:
        """Return ``True`` when no new register can be tracked."""
        return self.capacity is not None and len(self._entries) >= self.capacity

    # -- SharingTracker interface -------------------------------------------------

    def try_share(self, preg: int, *, dest_arch: int, src_arch: int | None = None,
                  memory_bypass: bool = False) -> bool:
        """Record one more sharer of ``preg`` if capacity and counter width allow it."""
        self.stats.share_requests += 1
        limit = self._counter_limit()
        entry = self._entries.get(preg)
        if entry is None:
            if self.is_full():
                self.stats.shares_rejected_full += 1
                return False
            self._entries[preg] = IsrbEntry(referenced=1)
            self.stats.shares_granted += 1
            self._note_occupancy()
            return True
        if limit is not None and entry.referenced >= limit:
            # A wider reference count than the field can hold: abort the
            # bypass rather than lose track of a sharer (Section 6.3's
            # counter-width study measures how often this happens).
            self.stats.shares_rejected_saturated += 1
            return False
        entry.referenced += 1
        self.stats.shares_granted += 1
        return True

    def on_share_commit(self, preg: int) -> None:
        """A sharing instruction referencing ``preg`` committed: update the committed image."""
        entry = self._entries.get(preg)
        if entry is not None:
            entry.referenced_committed += 1

    def reclaim(self, preg: int, arch_reg: int) -> ReclaimDecision:
        """Reclaim check when a committing instruction overwrites a mapping holding ``preg``."""
        self.stats.reclaim_checks += 1
        entry = self._entries.get(preg)
        if entry is None:
            return ReclaimDecision.FREE
        if entry.referenced == entry.committed:
            self._free_entry(preg)
            return ReclaimDecision.FREE
        entry.committed += 1
        self.stats.reclaim_deferred += 1
        return ReclaimDecision.KEEP

    def flush_to_committed(self) -> list[int]:
        """Fall back to the committed image after a squash-at-commit pipeline flush."""
        self.stats.flush_recoveries += 1
        freed: list[int] = []
        for preg in list(self._entries):
            entry = self._entries[preg]
            entry.referenced = entry.referenced_committed
            if entry.committed > entry.referenced:
                # The last committed overwrite should have freed the register
                # but was held back by a (now squashed) speculative sharer.
                freed.append(preg)
                self._free_entry(preg)
            elif entry.referenced == 0 and entry.committed == 0:
                # Only speculative sharers existed; the entry is no longer needed.
                self._free_entry(preg)
        self.stats.registers_freed_on_flush += len(freed)
        return freed

    # -- branch checkpoint interface (Section 4.3.1 / 4.3.2) -----------------------

    def checkpoint(self) -> int:
        """Snapshot the ``referenced`` fields; returns a checkpoint identifier."""
        checkpoint_id = self._next_checkpoint_id
        self._next_checkpoint_id += 1
        self._checkpoints[checkpoint_id] = {
            preg: entry.referenced for preg, entry in self._entries.items()
        }
        return checkpoint_id

    def restore(self, checkpoint_id: int, discard_younger: bool = True) -> list[int]:
        """Restore a checkpoint; returns the physical registers freed during recovery.

        Entries freed since the checkpoint was taken have had their
        checkpointed ``referenced`` gang-reset to zero (see
        :meth:`_free_entry`), so restoring never resurrects stale sharers.
        """
        if checkpoint_id not in self._checkpoints:
            raise KeyError(f"unknown ISRB checkpoint {checkpoint_id}")
        snapshot = self._checkpoints[checkpoint_id]
        freed: list[int] = []
        for preg in list(self._entries):
            entry = self._entries[preg]
            restored = snapshot.get(preg, 0)
            entry.referenced = restored
            if entry.committed > entry.referenced:
                freed.append(preg)
                self._free_entry(preg)
            elif entry.referenced == 0 and entry.committed == 0:
                self._free_entry(preg)
        if discard_younger:
            for other_id in list(self._checkpoints):
                if other_id >= checkpoint_id:
                    del self._checkpoints[other_id]
        self.stats.flush_recoveries += 1
        self.stats.registers_freed_on_flush += len(freed)
        return freed

    def release_checkpoint(self, checkpoint_id: int) -> None:
        """Drop a checkpoint that is no longer needed (its branch retired)."""
        self._checkpoints.pop(checkpoint_id, None)

    @property
    def live_checkpoints(self) -> int:
        """Number of currently held checkpoints."""
        return len(self._checkpoints)

    # -- introspection ------------------------------------------------------------

    def entry(self, preg: int) -> IsrbEntry | None:
        """Return the live entry for ``preg`` (or ``None``); used by tests."""
        return self._entries.get(preg)

    def is_tracked(self, preg: int) -> bool:
        """Return ``True`` while ``preg`` has an ISRB entry."""
        return preg in self._entries

    def occupancy(self) -> int:
        """Number of live ISRB entries."""
        return len(self._entries)

    def storage_bits(self) -> int:
        """Main-structure storage: per entry, a register tag plus the two counters.

        With 32 entries, 3-bit counters and a 9-bit physical register
        identifier this is the 480-bit figure of Section 6.3.
        """
        entries = self.capacity if self.capacity is not None else self.config.num_phys_regs
        counter_bits = self.config.counter_bits if self.config.counter_bits is not None else 32
        tag_bits = max((self.config.num_phys_regs - 1).bit_length(), 1)
        return entries * (tag_bits + 2 * counter_bits)

    def checkpoint_bits(self) -> int:
        """Per-checkpoint storage: the ``referenced`` field of every entry (Section 4.3.3)."""
        entries = self.capacity if self.capacity is not None else self.config.num_phys_regs
        counter_bits = self.config.counter_bits if self.config.counter_bits is not None else 32
        return entries * counter_bits

    # -- snapshot / restore (two-speed simulation) ----------------------------------

    def to_snapshot(self) -> dict:
        """Serialise the live entries (see :meth:`SharingTracker.to_snapshot`).

        Branch checkpoints are transient speculative state and are not part
        of the snapshot; a drained pipeline holds none.
        """
        return {
            "scheme": self.name,
            "entries": {preg: [e.referenced, e.committed, e.referenced_committed]
                        for preg, e in self._entries.items()},
        }

    def restore_snapshot(self, snapshot: dict) -> None:
        """Overwrite the live entries with a :meth:`to_snapshot` image."""
        if snapshot.get("scheme") != self.name:
            raise ValueError(
                f"tracker snapshot of scheme {snapshot.get('scheme')!r} cannot be "
                f"restored into {self.name!r}")
        self._entries = {
            int(preg): IsrbEntry(referenced=ref, committed=com, referenced_committed=refcom)
            for preg, (ref, com, refcom) in snapshot["entries"].items()
        }
        self._checkpoints = {}
        self._next_checkpoint_id = 0

    # -- internals ----------------------------------------------------------------

    def _free_entry(self, preg: int) -> None:
        """Release an entry and gang-reset its slot in every live checkpoint."""
        del self._entries[preg]
        self.stats.entries_freed += 1
        for snapshot in self._checkpoints.values():
            if preg in snapshot:
                snapshot[preg] = 0
