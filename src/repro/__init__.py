"""Reproduction of "Cost Effective Physical Register Sharing" (HPCA 2016).

The library implements the paper's register sharing framework -- the
Inflight Shared Register Buffer (ISRB) and the reference-counting schemes it
is compared against -- together with the two optimisations used to evaluate
it (move elimination and speculative memory bypassing with a TAGE-like
Instruction Distance predictor), on top of a from-scratch cycle-level
out-of-order core model and a synthetic workload suite.

Typical usage::

    from repro import CoreConfig, simulate

    baseline = CoreConfig()
    optimised = baseline.with_move_elimination().with_smb()

    base = simulate("spill_reload", baseline, max_ops=20_000)
    best = simulate("spill_reload", optimised, max_ops=20_000)
    print(best.speedup_over(base))

Whole evaluation matrices (the paper's Figures 7--9) run through the
experiment harness instead of one ``simulate`` call at a time::

    from repro import SweepSpec, run_sweep

    spec = SweepSpec(schemes=("isrb", "refcount_checkpoint"), max_ops=20_000)
    report = run_sweep(spec, workers=4, cache_dir=".trace_cache")
    print(report.to_markdown())

or, equivalently, ``python -m repro sweep --schemes isrb,refcount_checkpoint``.
The paper's figures themselves come from the :mod:`repro.paper` pipeline::

    from repro import run_paper

    summary = run_paper(smoke=True)   # Figures 7-9 -> artifacts/paper/

which is ``python -m repro paper --smoke`` on the command line -- resumable
via an append-only results store, so interrupted grids restart where they
stopped.

Observability lives in :mod:`repro.telemetry` (docs/observability.md):
opt-in per-instruction pipeline tracing (``CoreConfig.with_trace()`` /
``python -m repro trace``), the unified :class:`MetricsRegistry` behind
every stat dictionary, and structured run logging with live progress for
the sweep and paper pipelines.

The subpackages are documented in DESIGN.md and docs/maintainer-guide.md;
the most useful entry points are re-exported here.
"""

from repro.core.isrb import InflightSharedRegisterBuffer, IsrbConfig
from repro.experiments import (
    Job,
    JobResult,
    SweepReport,
    SweepSpec,
    TraceCache,
    build_report,
    run_jobs,
    run_sweep,
)
from repro.core.move_elim import MoveEliminationPolicy
from repro.core.smb import SmbConfig
from repro.paper import FIGURES, ResultsStore, run_paper
from repro.core.tracker import TrackerConfig, make_tracker
from repro.isa.functional import FunctionalCore
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core, simulate, simulate_trace
from repro.pipeline.sampling import SampledSimulator, SamplingConfig, simulate_sampled
from repro.pipeline.snapshot import CoreSnapshot
from repro.pipeline.result import SimulationResult
from repro.telemetry import (
    MetricsRegistry,
    PipelineTracer,
    ProgressReporter,
    RunLogger,
    TraceConfig,
)
from repro.workloads import DEFAULT_SUITE, generate_trace, list_workloads

__version__ = "1.10.0"

__all__ = [
    "__version__",
    "FIGURES",
    "ResultsStore",
    "run_paper",
    "SweepSpec",
    "Job",
    "JobResult",
    "TraceCache",
    "run_jobs",
    "run_sweep",
    "SweepReport",
    "build_report",
    "CoreConfig",
    "Core",
    "CoreSnapshot",
    "FunctionalCore",
    "SampledSimulator",
    "SamplingConfig",
    "SimulationResult",
    "simulate",
    "simulate_sampled",
    "simulate_trace",
    "InflightSharedRegisterBuffer",
    "IsrbConfig",
    "TrackerConfig",
    "make_tracker",
    "MoveEliminationPolicy",
    "SmbConfig",
    "generate_trace",
    "list_workloads",
    "DEFAULT_SUITE",
    "MetricsRegistry",
    "PipelineTracer",
    "ProgressReporter",
    "RunLogger",
    "TraceConfig",
]
