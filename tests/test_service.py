"""Contract, concurrency and chaos tests for the sweep service.

The suite runs the real asyncio server in-process on an ephemeral port
(event-driven readiness, no sleeps) and drives it with the stdlib
:class:`~repro.service.client.ServiceClient`.  The acceptance properties
pinned here:

* every endpoint answers its documented success / 4xx shapes, rejects
  unknown schema versions and malformed JSON, and survives raw protocol
  junk;
* two concurrent clients requesting overlapping grids both complete and
  the shared store records each unique cell exactly once (dedup under
  contention via the lease machinery);
* a repeat of an already-served sweep is answered entirely from the
  store -- zero cells simulated, asserted via RunLogger counters;
* a cancelled sweep frees its queue slot and releases its leases
  (cancellation rides the runner's Ctrl-C drain path);
* a fault-injected submission survives via retries and its report is
  byte-identical to the fault-free artifact.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.experiments.runner import run_sweep
from repro.experiments.scheduler import RetryPolicy
from repro.paper.store import ResultsStore
from repro.service import schemas
from repro.service import service as service_module
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceServer
from repro.service.service import SweepService

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_cap=0.05)


# -- fixtures ------------------------------------------------------------------------


@pytest.fixture()
def make_server(tmp_path):
    """Factory for an in-process server over a tmp store; stops them all."""
    servers = []

    def build(**kwargs):
        kwargs.setdefault("fsync", False)
        kwargs.setdefault("retry", FAST_RETRY)
        service = SweepService(tmp_path / "results.jsonl", **kwargs)
        server = ServiceServer(service).start()
        servers.append(server)
        return server

    yield build
    for server in servers:
        server.stop()


@pytest.fixture()
def server(make_server):
    return make_server(max_concurrent=4, quota=4, queue_limit=8)


def client_for(server: ServiceServer, client_id: str = "tester") -> ServiceClient:
    return ServiceClient("127.0.0.1", server.port, client_id=client_id,
                         timeout=60.0)


@pytest.fixture(scope="module")
def chaos_reference(chaos_spec):
    """The fault-free sweep.json bytes for the chaos grid."""
    return (run_sweep(chaos_spec, cache_dir=None).to_json() + "\n").encode()


def submission(spec, faults=None) -> dict:
    payload = {"api": schemas.API_VERSION, "spec": schemas.spec_to_dict(spec)}
    if faults is not None:
        payload["faults"] = faults
    return payload


# -- schema unit tests (no server) ---------------------------------------------------


def test_spec_round_trips_through_the_wire_format(chaos_spec, small_spec):
    for spec in (chaos_spec, small_spec):
        assert schemas.spec_from_dict(schemas.spec_to_dict(spec)) == spec


def test_spec_from_dict_rejects_unknowns_types_and_bad_values():
    with pytest.raises(schemas.SchemaError) as err:
        schemas.spec_from_dict({"max_opss": 1})
    assert err.value.code == "unknown_field"
    with pytest.raises(schemas.SchemaError) as err:
        schemas.spec_from_dict({"max_ops": "many"})
    assert err.value.code == "invalid_field"
    with pytest.raises(schemas.SchemaError) as err:
        schemas.spec_from_dict({"max_ops": True})  # bool is not an int here
    assert err.value.code == "invalid_field"
    with pytest.raises(schemas.SchemaError) as err:
        schemas.spec_from_dict({"max_ops": -1})  # SweepSpec's own validation
    assert err.value.code == "invalid_spec"
    with pytest.raises(schemas.SchemaError) as err:
        schemas.spec_from_dict([1, 2])
    assert err.value.code == "invalid_spec"


def test_parse_submission_envelope_versioning_and_faults(chaos_spec):
    body = json.dumps(submission(chaos_spec, faults={"seed": 3})).encode()
    spec, plan = schemas.parse_submission(body)
    assert spec == chaos_spec and plan.seed == 3

    with pytest.raises(schemas.SchemaError) as err:
        schemas.parse_submission(b"{not json")
    assert err.value.code == "malformed_json"
    with pytest.raises(schemas.SchemaError) as err:
        schemas.parse_submission(json.dumps(
            {"api": 99, "spec": {}}).encode())
    assert err.value.code == "unsupported_api_version"
    with pytest.raises(schemas.SchemaError) as err:
        schemas.parse_submission(json.dumps(
            {"api": 1, "spec": {}, "faults": {"rate": 1.0}}).encode())
    assert err.value.code == "invalid_faults"  # seed is mandatory


# -- endpoint contract: success shapes -----------------------------------------------


def test_health_and_metrics_endpoints(server):
    client = client_for(server)
    health = client.health()
    assert health["api"] == schemas.API_VERSION
    assert health["status"] == "ok" and "version" in health
    metrics = client.metrics()["metrics"]
    assert metrics["schema"] == 1
    names = {metric["name"] for metric in metrics["metrics"]}
    assert "service_requests_total" in names
    assert "service_jobs_active" in names


def test_submit_stream_status_report_and_results(server, tiny_spec):
    client = client_for(server)
    sweep = client.submit(schemas.spec_to_dict(tiny_spec))
    assert sweep["id"].startswith("sweep-")
    assert sweep["state"] in ("queued", "running")
    assert sweep["cells"]["total"] == tiny_spec.job_count()

    # The report 409s until the job is done...
    try:
        client.report_bytes(sweep["id"])
    except ServiceError as err:
        assert err.status == 409 and err.body["error"]["code"] == "not_finished"
    status = client.wait(sweep["id"])
    assert status["state"] == "done"
    assert status["cells"]["done"] == tiny_spec.job_count()

    # ...then serves bytes identical to a direct run's sweep.json.
    expected = (run_sweep(tiny_spec, cache_dir=None).to_json() + "\n").encode()
    assert client.report_bytes(sweep["id"]) == expected

    # The SSE stream is replayable from any offset, frames carry seqs.
    events = list(client.stream(sweep["id"], start=0))
    assert [event["seq"] for event in events] == list(range(len(events)))
    assert events[-1]["event"] == "sweep_done"
    tail = list(client.stream(sweep["id"], start=len(events) - 1))
    assert tail == events[-1:]

    # The store answers queries for the finished cells.
    rows = client.results(workload=tiny_spec.workloads[0])
    assert rows["count"] == tiny_spec.job_count()
    assert all(row["workload"] == tiny_spec.workloads[0]
               for row in rows["results"])
    assert client.results(workload="no_such_workload")["count"] == 0
    assert client.results(limit=1)["count"] == 1
    # Fingerprint prefixes select exactly the cells of that machine config.
    fp = rows["results"][0]["config"]
    narrowed = client.results(fingerprint=fp[:6])
    assert narrowed["count"] >= 1
    assert all(row["config"].startswith(fp[:6])
               for row in narrowed["results"])

    # GET /sweeps lists the job.
    listing = client.request("GET", "/sweeps")["sweeps"]
    assert sweep["id"] in {entry["id"] for entry in listing}


# -- endpoint contract: the 4xx surface ----------------------------------------------


def expect_error(client, method, path, status, code, payload=None):
    with pytest.raises(ServiceError) as err:
        client.request(method, path, payload=payload)
    assert err.value.status == status
    assert err.value.body["error"]["code"] == code


def test_error_contract_per_endpoint(server, tiny_spec):
    client = client_for(server)
    spec_dict = schemas.spec_to_dict(tiny_spec)
    # Unknown routes and jobs.
    expect_error(client, "GET", "/nope", 404, "not_found")
    expect_error(client, "GET", "/sweeps/sweep-9999", 404, "unknown_job")
    expect_error(client, "DELETE", "/sweeps/sweep-9999", 404, "unknown_job")
    expect_error(client, "GET", "/sweeps/sweep-9999/report", 404, "unknown_job")
    # Wrong methods.
    expect_error(client, "POST", "/health", 405, "method_not_allowed")
    expect_error(client, "DELETE", "/metrics", 405, "method_not_allowed")
    expect_error(client, "PUT", "/sweeps", 405, "method_not_allowed")
    expect_error(client, "POST", "/results", 405, "method_not_allowed",
                 payload={})
    # Schema rejections.
    expect_error(client, "POST", "/sweeps", 400, "unsupported_api_version",
                 payload={"api": 99, "spec": spec_dict})
    expect_error(client, "POST", "/sweeps", 400, "unknown_field",
                 payload={"api": 1, "spec": dict(spec_dict, max_opss=1)})
    expect_error(client, "POST", "/sweeps", 400, "invalid_faults",
                 payload={"api": 1, "spec": spec_dict,
                          "faults": {"seed": 1, "kinds": ["explode"]}})
    # Query validation on /results.
    expect_error(client, "GET", "/results?bogus=1", 400, "invalid_query")
    expect_error(client, "GET", "/results?limit=lots", 400, "invalid_query")
    # A finished job's nested junk path.
    sweep = client.submit(spec_dict)
    client.wait(sweep["id"])
    expect_error(client, "GET", f"/sweeps/{sweep['id']}/bogus", 404,
                 "unknown_job")


def raw_exchange(port: int, data: bytes) -> bytes:
    """One raw-socket exchange; returns everything until the server closes."""
    with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
        sock.sendall(data)
        received = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return received
            received += chunk


def test_protocol_junk_is_answered_with_400(server):
    # Malformed JSON in an otherwise well-formed POST.
    response = raw_exchange(server.port,
                            b"POST /sweeps HTTP/1.1\r\n"
                            b"Connection: close\r\n"
                            b"Content-Length: 9\r\n\r\n{not json")
    assert response.startswith(b"HTTP/1.1 400 ")
    assert b"malformed_json" in response
    # A garbage request line.
    response = raw_exchange(server.port, b"GARBAGE\r\n\r\n")
    assert response.startswith(b"HTTP/1.1 400 ")
    assert b"bad_request" in response
    # An oversized declared body is rejected before it is read.
    declared = schemas.MAX_BODY_BYTES + 1
    response = raw_exchange(server.port,
                            b"POST /sweeps HTTP/1.1\r\n"
                            b"Content-Length: %d\r\n\r\n" % declared)
    assert response.startswith(b"HTTP/1.1 400 ")
    assert b"request body too large" in response
    # A negative Content-Length likewise.
    response = raw_exchange(server.port,
                            b"POST /sweeps HTTP/1.1\r\n"
                            b"Content-Length: -5\r\n\r\n")
    assert response.startswith(b"HTTP/1.1 400 ")


# -- quotas and queue limits (blocked engine; no sleeps) -----------------------------


@pytest.fixture()
def gated_engine(monkeypatch):
    """Replace the sweep engine with one that blocks until released."""
    release = threading.Event()

    class FakeReport:
        def to_json(self, **_kwargs):
            return "{}"

    def fake_run_sweep(spec, progress=None, **_kwargs):
        release.wait(timeout=60.0)
        return FakeReport()

    monkeypatch.setattr(service_module, "run_sweep", fake_run_sweep)
    yield release
    release.set()


def test_per_client_quota_and_global_queue_limit(make_server, gated_engine,
                                                 tiny_spec):
    server = make_server(max_concurrent=1, quota=1, queue_limit=2)
    spec_dict = schemas.spec_to_dict(tiny_spec)
    alice, bob, eve = (client_for(server, name)
                       for name in ("alice", "bob", "eve"))
    first = alice.submit(spec_dict)
    # Quota: alice already holds her one active sweep.
    with pytest.raises(ServiceError) as err:
        alice.submit(spec_dict)
    assert err.value.status == 429
    assert err.value.body["error"]["code"] == "quota_exceeded"
    # Another client still fits; the third hits the global limit.
    bob.submit(spec_dict)
    with pytest.raises(ServiceError) as err:
        eve.submit(spec_dict)
    assert err.value.status == 503
    assert err.value.body["error"]["code"] == "queue_full"
    # Releasing the engine drains the queue and frees every slot.
    gated_engine.set()
    assert alice.wait(first["id"])["state"] == "done"


def test_cancelling_a_queued_sweep_frees_its_slot_immediately(
        make_server, gated_engine, tiny_spec):
    server = make_server(max_concurrent=1, quota=2, queue_limit=2)
    spec_dict = schemas.spec_to_dict(tiny_spec)
    client = client_for(server)
    client.submit(spec_dict)              # occupies the single worker
    queued = client.submit(spec_dict)     # waits behind it
    with pytest.raises(ServiceError):     # the queue is now full
        client.submit(spec_dict)
    cancelled = client.cancel(queued["id"])
    assert cancelled["state"] == "cancelled"
    # The slot is free again without anything having finished.
    replacement = client.submit(spec_dict)
    assert replacement["id"] != queued["id"]
    # Cancel is idempotent and never rewrites terminal history.
    assert client.cancel(queued["id"])["state"] == "cancelled"


# -- the acceptance e2e: concurrency, store-served repeats, cancellation -------------


def test_concurrent_overlapping_clients_dedup_through_the_store(
        server, tmp_path, chaos_spec, tiny_spec, chaos_reference):
    """N clients race overlapping grids; each unique cell simulates once."""
    outcomes = {}

    def session(name: str, spec) -> None:
        client = client_for(server, name)
        sweep = client.submit(schemas.spec_to_dict(spec))
        outcomes[name] = client.wait(sweep["id"])

    # tiny_spec's single cell is a subset of chaos_spec's two.
    plans = [("c1", chaos_spec), ("c2", chaos_spec), ("c3", tiny_spec),
             ("c4", tiny_spec)]
    threads = [threading.Thread(target=session, args=plan) for plan in plans]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert len(outcomes) == len(plans)
    assert all(status["state"] == "done" for status in outcomes.values())

    # Dedup under contention: exactly one simulation per unique cell.
    unique_cells = chaos_spec.job_count()  # tiny's cell is one of these
    simulated = sum(status["cells"]["simulated"]
                    for status in outcomes.values())
    assert simulated == unique_cells
    store = ResultsStore(tmp_path / "results.jsonl", fsync=False)
    assert store.verify()["records"] == unique_cells
    assert store.verify()["leases_live"] == 0
    assert store.verify()["duplicate_keys"] == 0
    outcome = store.compact()
    assert outcome["records_kept"] == unique_cells
    assert outcome["duplicates_dropped"] == 0

    # Every chaos-grid client got the canonical artifact bytes.
    client = client_for(server)
    for name, spec in plans:
        if spec is chaos_spec:
            job_id = outcomes[name]["id"]
            assert client.report_bytes(job_id) == chaos_reference


def test_repeat_sweep_is_served_entirely_from_the_store(server, chaos_spec,
                                                        chaos_reference):
    client = client_for(server)
    first = client.wait(client.submit(schemas.spec_to_dict(chaos_spec))["id"])
    assert first["state"] == "done"
    assert first["cells"]["simulated"] == chaos_spec.job_count()

    again = client.wait(client.submit(schemas.spec_to_dict(chaos_spec))["id"])
    assert again["state"] == "done"
    # Zero cells simulated, asserted via the job's RunLogger counters.
    assert again["cells"]["simulated"] == 0
    assert again["cells"]["from_store"] == chaos_spec.job_count()
    assert again["counters"].get("cell_simulated", 0) == 0
    assert again["counters"]["cell_from_store"] == chaos_spec.job_count()
    # The cached artifact is still the canonical bytes.
    assert client.report_bytes(again["id"]) == chaos_reference


def test_cancelled_running_sweep_releases_leases_and_frees_slot(
        monkeypatch, make_server, tmp_path, chaos_spec, tiny_spec):
    """Cancel mid-run: the drain path releases every lease, the slot frees."""
    first_cell = threading.Event()
    cancel_sent = threading.Event()
    real_run_sweep = service_module.run_sweep

    def gated_run_sweep(spec, progress=None, **kwargs):
        def paced(done, total, job_result):
            progress(done, total, job_result)  # raises once cancel is set
            first_cell.set()
            cancel_sent.wait(timeout=60.0)     # hold before the next cell

        return real_run_sweep(spec, progress=paced, **kwargs)

    monkeypatch.setattr(service_module, "run_sweep", gated_run_sweep)
    server = make_server(max_concurrent=1, quota=2, queue_limit=2)
    client = client_for(server)
    sweep = client.submit(schemas.spec_to_dict(chaos_spec))
    assert first_cell.wait(timeout=60.0)       # cell 1 done, cell 2 pending
    cancelled = client.cancel(sweep["id"])
    assert cancelled["state"] in ("running", "cancelled")
    cancel_sent.set()
    final = client.wait(sweep["id"])
    assert final["state"] == "cancelled"
    assert final["cells"]["done"] < chaos_spec.job_count()

    # Leases are gone (the store is resumable by anyone)...
    store = ResultsStore(tmp_path / "results.jsonl", fsync=False)
    report = store.verify()
    assert report["leases_live"] == 0 and report["leases_stale"] == 0
    # ...the queue slot is free, and a fresh submission completes the grid.
    monkeypatch.setattr(service_module, "run_sweep", real_run_sweep)
    resumed = client.wait(
        client.submit(schemas.spec_to_dict(chaos_spec))["id"])
    assert resumed["state"] == "done"
    assert resumed["cells"]["from_store"] >= 1  # the cancelled run's cell


# -- chaos on the service path -------------------------------------------------------


def test_fault_injected_submission_survives_and_matches_clean_bytes(
        server, chaos_spec, chaos_reference):
    client = client_for(server)
    sweep = client.submit(schemas.spec_to_dict(chaos_spec),
                          faults={"seed": 3, "rate": 1.0})
    status = client.wait(sweep["id"])
    assert status["state"] == "done"
    # The faults really fired (first attempts), retries survived them.
    assert status["counters"].get("job_retry", 0) >= 1
    assert client.report_bytes(sweep["id"]) == chaos_reference


# -- the CI scripted session, exercised in-process -----------------------------------


def test_scripted_client_session_passes_and_writes_artifacts(
        server, tmp_path, chaos_reference):
    from repro.service import client as client_module

    report_out = tmp_path / "served_sweep.json"
    transcript = tmp_path / "transcript.jsonl"
    exit_code = client_module.main([
        "--port", str(server.port), "--max-ops", "800",
        "--report-out", str(report_out), "--transcript", str(transcript)])
    assert exit_code == 0
    assert report_out.read_bytes() == chaos_reference
    steps = [json.loads(line)["step"]
             for line in transcript.read_text().splitlines()]
    assert steps == ["health", "submit", "wait", "report", "results",
                     "submit_second", "cancel", "cancel_final", "metrics"]
