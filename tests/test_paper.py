"""Tests for the paper-figure pipeline: results store, figure grids, charts.

The acceptance properties pinned here:

* the store round-trips results, distinguishes configurations that could
  simulate differently, survives corruption by re-running, and makes
  ``run_jobs``/``run_sweep``/``run_paper`` resumable;
* ``repro paper --smoke`` produces REPORT.md, three SVG figures and
  figures.json, and a second invocation after deleting rendered artifacts
  re-renders them from the store **without simulating anything**;
* the SVG renderer emits well-formed standalone documents with a legend,
  tooltips and the series data.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from pathlib import Path

import pytest

from repro.experiments.grid import SweepSpec
from repro.experiments.runner import run_jobs, run_sweep
from repro.paper import FIGURES, ResultsStore, bar_chart, job_key, line_chart, run_paper
from repro.pipeline.config import CoreConfig

SVG_NS = "{http://www.w3.org/2000/svg}"


# -- store keying -------------------------------------------------------------------


def test_job_key_distinguishes_prf_sizing(tiny_jobs):
    """Same variant name on a resized machine must never share a key."""
    job = tiny_jobs[1]
    resized = SweepSpec(
        schemes=("isrb",), workloads=("move_chain",), max_ops=800,
        base_config=CoreConfig().replace(num_int_pregs=128,
                                         num_fp_pregs=128)).expand()[1]
    assert job.variant == resized.variant
    assert job_key(job) != job_key(resized)


def test_job_key_distinguishes_sampling_and_trace(tiny_jobs):
    job = tiny_jobs[0]
    sampled = SweepSpec(schemes=("isrb",), workloads=("move_chain",),
                        max_ops=6_000, sample_period=2_000,
                        sample_window=600, sample_warmup=300).expand()[0]
    longer = SweepSpec(schemes=("isrb",), workloads=("move_chain",),
                       max_ops=900).expand()[0]
    keys = {job_key(job), job_key(sampled), job_key(longer)}
    assert len(keys) == 3


def test_job_key_of_fixed_geometry_predates_error_budget_knobs():
    """A store written before the error-budget knobs existed must resume
    with zero cells re-simulated: the fixed-geometry sampling fingerprint
    is pinned to the sha of the *old* five-field repr."""
    import hashlib

    sampled = SweepSpec(schemes=("isrb",), workloads=("move_chain",),
                        max_ops=6_000, sample_period=2_000,
                        sample_window=600, sample_warmup=300).expand()[0]
    old_repr = ("SamplingConfig(period=2000, window=600, warmup=300, "
                "cooldown=300, warm_gaps=True)")
    assert repr(sampled.sampling) == old_repr
    expected = "s" + hashlib.sha256(old_repr.encode()).hexdigest()[:12]
    assert job_key(sampled).endswith(expected)
    # An error-budget job keys differently (it may place windows elsewhere).
    adaptive = SweepSpec(schemes=("isrb",), workloads=("move_chain",),
                         max_ops=6_000, sample_period=2_000,
                         sample_window=600, sample_warmup=300,
                         sample_tolerance=0.05).expand()[0]
    assert job_key(adaptive) != job_key(sampled)


# -- store durability ---------------------------------------------------------------


def test_store_roundtrip_and_resume(tmp_path, tiny_jobs):
    store = ResultsStore(tmp_path / "results.jsonl")
    first = run_jobs(tiny_jobs, store=store)
    assert all(r.ok and not r.from_store for r in first)
    assert store.stats.appended == len(tiny_jobs)

    # A brand-new store object over the same file resumes everything.
    store.close()
    reopened = ResultsStore(tmp_path / "results.jsonl")
    second = run_jobs(tiny_jobs, store=reopened)
    assert all(r.ok and r.from_store for r in second)
    for a, b in zip(first, second):
        assert a.result.to_dict() == b.result.to_dict()


def test_store_skips_corrupt_lines_and_reruns_those_cells(tmp_path, tiny_jobs):
    path = tmp_path / "results.jsonl"
    store = ResultsStore(path)
    run_jobs(tiny_jobs, store=store)
    store.close()

    # Corrupt one record (garbage) and tear the final line mid-append.
    lines = path.read_text().splitlines()
    lines[0] = "{this is not json"
    text = "\n".join(lines) + "\n" + '{"v": 1, "key": "torn", "resu'
    path.write_text(text)

    resumed = ResultsStore(path)
    results = run_jobs(tiny_jobs, store=resumed)
    assert all(r.ok for r in results)
    # Exactly the corrupted cell re-simulated; the intact one resumed.
    assert sum(1 for r in results if r.from_store) == len(tiny_jobs) - 1
    assert resumed.stats.corrupt_lines >= 2


def test_store_total_corruption_falls_back_to_clean_rerun(tmp_path, tiny_jobs):
    path = tmp_path / "results.jsonl"
    path.write_bytes(b"\x00\xff garbage \x00" * 50)
    store = ResultsStore(path)
    results = run_jobs(tiny_jobs, store=store)
    assert all(r.ok and not r.from_store for r in results)
    # The re-run repopulated the store; a fresh handle resumes fully.
    store.close()
    again = run_jobs(tiny_jobs, store=ResultsStore(path))
    assert all(r.from_store for r in again)


def test_store_ignores_records_with_wrong_version(tmp_path, tiny_jobs):
    path = tmp_path / "results.jsonl"
    store = ResultsStore(path)
    run_jobs(tiny_jobs, store=store)
    store.close()
    bumped = path.read_text().replace('"v": 1', '"v": 99')
    path.write_text(bumped)
    results = run_jobs(tiny_jobs, store=ResultsStore(path))
    assert all(not r.from_store for r in results)


# -- resumable sweeps ----------------------------------------------------------------


def test_run_sweep_resume_after_kill_is_byte_identical(tmp_path):
    """An interrupted grid, resumed, equals the uninterrupted artifact."""
    spec = SweepSpec(schemes=("isrb", "refcount_checkpoint"),
                     workloads=("spill_reload", "move_chain"), max_ops=1_500)
    uninterrupted = run_sweep(spec, cache_dir=None)

    # "Kill" a run after three jobs: only those cells reach the store.
    path = tmp_path / "results.jsonl"
    partial = ResultsStore(path)
    run_jobs(spec.expand()[:3], store=partial)
    partial.close()  # the process dies here

    resumed_store = ResultsStore(path)
    resumed = run_sweep(spec, cache_dir=None, store=resumed_store)
    assert sum(1 for _ in spec.expand()) == 6
    assert resumed_store.stats.appended == 3  # only the missing cells ran
    assert resumed.to_json() == uninterrupted.to_json()
    assert resumed.to_markdown() == uninterrupted.to_markdown()


def test_run_sweep_sampled_resume_matches_fresh_run(tmp_path):
    """Resume composes with the checkpoint farm (sampled sweeps)."""
    spec = SweepSpec(schemes=("isrb",), workloads=("spill_reload",),
                     max_ops=3_000, sample_period=1_000, sample_window=300,
                     sample_warmup=200)
    fresh = run_sweep(spec, cache_dir=None)
    store = ResultsStore(tmp_path / "results.jsonl")
    first = run_sweep(spec, cache_dir=None, store=store)
    second = run_sweep(spec, cache_dir=None, store=store)
    store.close()
    assert first.to_json() == fresh.to_json()
    assert second.to_json() == fresh.to_json()
    assert store.stats.appended == spec.job_count()  # second run added nothing


# -- the paper pipeline --------------------------------------------------------------


@pytest.fixture(scope="module")
def paper_smoke(tmp_path_factory):
    out = tmp_path_factory.mktemp("paper_smoke")
    summary = run_paper(smoke=True, out_dir=out)
    return out, summary


def test_paper_smoke_produces_all_artifacts(paper_smoke):
    out, summary = paper_smoke
    assert summary.failures == 0
    assert summary.simulated > 0
    assert (out / "REPORT.md").exists()
    assert (out / "figures.json").exists()
    svgs = sorted(p.name for p in out.glob("*.svg"))
    assert svgs == ["figure7.svg", "figure8.svg", "figure9.svg"]
    report = (out / "REPORT.md").read_text()
    for figure in ("Figure 7", "Figure 8", "Figure 9"):
        assert figure in report
    assert "**geomean**" in report
    # The report narrates the claims with explicit verdicts.
    assert "Checks against the claim" in report
    data = json.loads((out / "figures.json").read_text())
    assert [f["figure"] for f in data["figures"]] == ["7", "8", "9"]
    for figure in data["figures"]:
        assert figure["series"], figure["figure"]
        assert figure["claims"], figure["figure"]


def test_paper_smoke_report_contains_no_wallclock(paper_smoke):
    """The artifact must be a pure function of the simulation results."""
    out, _ = paper_smoke
    report = (out / "REPORT.md").read_text()
    for forbidden in ("seconds", "elapsed", "20.7.", "2026"):
        assert forbidden not in report


def test_paper_rerender_after_artifact_delete_never_simulates(paper_smoke):
    out, _ = paper_smoke
    figures_json = (out / "figures.json").read_bytes()
    (out / "figure7.svg").unlink()
    (out / "figures.json").unlink()
    summary = run_paper(smoke=True, out_dir=out)
    assert summary.simulated == 0
    assert summary.from_store == summary.total_cells
    assert (out / "figure7.svg").exists()
    assert (out / "figures.json").read_bytes() == figures_json


def test_paper_single_figure_subset_reuses_store(paper_smoke):
    out, _ = paper_smoke
    summary = run_paper(figures=("9",), smoke=True, out_dir=out)
    assert summary.simulated == 0
    assert summary.figures == ["9"]


def test_paper_rejects_unknown_figure(tmp_path):
    with pytest.raises(ValueError, match="unknown figure"):
        run_paper(figures=("11",), smoke=True, out_dir=tmp_path)


def test_paper_figures_json_is_deterministic_across_runs(tmp_path):
    first = run_paper(figures=("9",), smoke=True, out_dir=tmp_path / "a")
    second = run_paper(figures=("9",), smoke=True, out_dir=tmp_path / "b")
    assert (first.paths["figures_json"].read_bytes()
            == second.paths["figures_json"].read_bytes())
    assert (first.paths["report"].read_bytes()
            == second.paths["report"].read_bytes())
    assert (first.paths["figure9"].read_bytes()
            == second.paths["figure9"].read_bytes())


# -- figure grids --------------------------------------------------------------------


def test_figure_smoke_grids_are_small_and_valid():
    for key, spec in FIGURES.items():
        slices = spec.slices(smoke=True)
        assert slices, key
        total = sum(s.spec.job_count() for s in slices)
        assert total <= 24, f"figure {key} smoke grid too large ({total})"


def test_figure7_full_grid_has_sampled_long_slice():
    labels = {s.label: s for s in FIGURES["7"].slices(smoke=False)}
    assert set(labels) == {"main", "long"}
    assert labels["long"].spec.sample_period is not None
    assert labels["main"].spec.sample_period is None
    # An explicit sample period converts the whole figure to sampled mode.
    sampled = {s.label: s for s in FIGURES["7"].slices(smoke=False,
                                                       sample_period=10_000)}
    assert sampled["main"].spec.sample_period == 10_000
    assert sampled["long"].spec.sample_period == 10_000


def test_figure8_slices_resize_both_register_classes():
    for grid_slice in FIGURES["8"].slices(smoke=False):
        config = grid_slice.spec.base_config
        assert config.num_int_pregs == grid_slice.x_value
        assert config.num_fp_pregs == grid_slice.x_value


# -- the SVG renderer ----------------------------------------------------------------


def _parse_svg(document: str) -> ET.Element:
    root = ET.fromstring(document)
    assert root.tag == f"{SVG_NS}svg"
    return root


def test_bar_chart_is_wellformed_with_legend_and_tooltips():
    svg = bar_chart("Speedup", ["w1", "w2", "geomean"],
                    [("isrb", [1.1, 1.2, 1.15]), ("mit", [1.0, None, 1.0])],
                    y_label="speedup (x)")
    root = _parse_svg(svg)
    texts = [t.text for t in root.iter(f"{SVG_NS}text")]
    assert "isrb" in texts and "mit" in texts  # legend for >= 2 series
    tooltips = [t.text for t in root.iter(f"{SVG_NS}title")]
    assert any("isrb / w1: 1.100x" in t for t in tooltips)
    # The missing cell renders nothing rather than a zero bar.
    assert not any("mit / w2" in t for t in tooltips)


def test_line_chart_is_wellformed_with_markers():
    svg = line_chart("Capacity", [8, 16, 32],
                     [("isrb", [1.05, 1.1, 1.12]),
                      ("unlimited", [1.13, 1.13, 1.13])],
                     x_label="entries", y_label="speedup (x)")
    root = _parse_svg(svg)
    circles = list(root.iter(f"{SVG_NS}circle"))
    assert len(circles) >= 6  # one ringed marker per point
    paths = [p for p in root.iter(f"{SVG_NS}path")]
    assert len(paths) == 2  # one polyline per series


def test_charts_escape_hostile_text():
    svg = bar_chart('<&"evil>', ["<cat>"], [("<series&>", [1.0])],
                    y_label="<y>")
    _parse_svg(svg)  # must stay well-formed XML
