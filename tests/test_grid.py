"""Sweep-grid expansion tests."""

import pytest

from repro.experiments.grid import SCHEME_PRESETS, SweepSpec, known_schemes


def test_expansion_count_default_optimisations():
    spec = SweepSpec(schemes=("isrb", "refcount_checkpoint"),
                     workloads=("spill_reload", "move_chain"), max_ops=5_000)
    jobs = spec.expand()
    # Per workload: 1 baseline + 2 scheme variants.
    assert len(jobs) == 6
    assert spec.job_count() == 6
    assert spec.trace_count() == 2
    baselines = [job for job in jobs if job.is_baseline]
    assert len(baselines) == 2
    assert all(job.max_ops == 5_000 and job.seed == 1 for job in jobs)


def test_expansion_with_ablation_axes_skips_the_double_off_cell():
    spec = SweepSpec(schemes=("isrb",), workloads=("move_chain",),
                     move_elim=(False, True), smb=(False, True))
    # (me, smb) in {(F,T), (T,F), (T,T)} -- (F,F) is the baseline itself.
    assert len(spec.variant_configs()) == 3
    assert spec.job_count() == 4


def test_sizing_override_expands_per_entry_point():
    spec = SweepSpec(schemes=("isrb",), workloads=("move_chain",),
                     entries=(8, 16, 32))
    variants = spec.variant_configs()
    assert len(variants) == 3
    assert sorted(config.tracker.entries for config in variants) == [8, 16, 32]


def test_sizing_override_is_pinned_for_unlimited_schemes():
    # refcount ignores capacity, so an entries sweep must not fabricate
    # distinctly named but identical variants.
    spec = SweepSpec(schemes=("refcount",), workloads=("move_chain",),
                     entries=(8, 16, 32))
    assert len(spec.variant_configs()) == 1
    # ...but its counter width is functional and does sweep.
    spec = SweepSpec(schemes=("refcount",), workloads=("move_chain",),
                     counter_bits=(1, 3))
    assert len(spec.variant_configs()) == 2


def test_job_ids_are_unique_and_filesystem_safe():
    spec = SweepSpec(schemes=("isrb", "refcount"),
                     workloads=("spill_reload", "move_chain"))
    jobs = spec.expand()
    ids = [job.job_id for job in jobs]
    assert len(set(ids)) == len(ids)
    for job_id in ids:
        assert "/" not in job_id and " " not in job_id


def test_unknown_scheme_and_workload_are_rejected():
    with pytest.raises(ValueError, match="unknown scheme"):
        SweepSpec(schemes=("isrb", "nope"))
    with pytest.raises(ValueError, match="unknown workload"):
        SweepSpec(workloads=("definitely_not_a_workload",))
    with pytest.raises(ValueError):
        SweepSpec(schemes=())


def test_empty_workloads_means_default_suite():
    spec = SweepSpec(schemes=("isrb",))
    assert len(spec.resolved_workloads()) >= 10


def test_presets_cover_every_make_tracker_scheme():
    assert set(known_schemes()) == set(SCHEME_PRESETS)
    assert "refcount_checkpoint" in SCHEME_PRESETS
