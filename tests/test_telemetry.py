"""Telemetry subsystem tests.

Four contracts, in the order the telemetry stack layers them:

* the metrics registry: classification conventions, merge policies,
  schema-versioned roundtrips, and the flat-dict view the artifacts store;
* the pipeline tracer: every event carries the required schema fields, the
  Chrome trace-event export is well-formed JSON, the Kanata export parses,
  and -- the zero-overhead invariant -- a traced run is bit-identical to
  an untraced one for every tracker scheme;
* wall-time hygiene: trace exports and report artifacts are byte-stable
  across runs and never absorb logger/progress wall-clock state;
* the observability surface: RunLogger phases and warnings under an
  injected clock, the progress line's rate/ETA math, the failure footer in
  the sweep report, and the ``repro trace`` CLI end to end.
"""

from __future__ import annotations

import json
import xml.dom.minidom

import pytest

from repro.experiments.cli import main
from repro.experiments.grid import SCHEME_PRESETS, Job, SweepSpec, known_schemes
from repro.experiments.report import build_report
from repro.experiments.runner import run_jobs, run_sweep
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core
from repro.telemetry import (
    MetricsRegistry,
    PipelineTracer,
    ProgressReporter,
    RunLogger,
    TraceConfig,
)
from repro.telemetry.metrics import METRICS_SCHEMA_VERSION, classify_stat
from repro.telemetry.runlog import format_eta
from repro.telemetry.trace import (
    EVENT_REQUIRED_FIELDS,
    STAGES,
    TRACE_SCHEMA_VERSION,
)
from repro.workloads import generate_trace


def scheme_config(name: str) -> CoreConfig:
    """The headline (move-elim + SMB) configuration of one scheme preset."""
    preset = SCHEME_PRESETS[name]
    return (CoreConfig()
            .with_tracker(scheme=preset["scheme"], entries=preset["entries"],
                          counter_bits=preset["counter_bits"])
            .with_move_elimination().with_smb())


def traced_run(workload: str = "alias_trap", scheme: str = "isrb",
               max_ops: int = 1_500, start: int = 0, limit: int = 256):
    """(result, tracer) of one traced simulation."""
    config = scheme_config(scheme).with_trace(start=start, limit=limit)
    core = Core(config)
    result = core.run(generate_trace(workload, max_ops=max_ops, seed=1))
    return result, core.tracer


# -- metrics registry -----------------------------------------------------------------


def test_classify_stat_conventions():
    assert classify_stat("committed_instructions") == ("counter", "sum")
    assert classify_stat("rob_peak_occupancy") == ("gauge", "max")
    assert classify_stat("tracker_storage_bits") == ("gauge", "last")
    assert classify_stat("tracker_checkpoint_bits") == ("gauge", "last")
    assert classify_stat("mem_l1d_miss_rate") == ("gauge", "mean")
    assert classify_stat("bypassed_load_fraction") == ("gauge", "mean")
    assert classify_stat("isrb_read_mean_distance") == ("gauge", "mean")


def test_registry_roundtrip_is_deterministic():
    registry = MetricsRegistry()
    registry.inc("ops", 41)
    registry.inc("ops")
    registry.set("peak_occupancy", 17, merge="max")
    registry.set("l1d_miss_rate", 0.25, merge="mean")
    registry.set("l1d_miss_rate", 0.75, merge="mean")
    registry.observe("latency", 3)
    registry.observe("latency", 900)

    exported = registry.to_dict()
    assert exported["schema"] == METRICS_SCHEMA_VERSION
    rebuilt = MetricsRegistry.from_dict(json.loads(json.dumps(exported)))
    assert rebuilt == registry
    assert rebuilt.to_dict() == exported

    stats = registry.as_stats()
    assert stats["ops"] == 42
    assert stats["l1d_miss_rate"] == pytest.approx(0.5)
    assert "latency" not in stats  # histograms have no flat-dict shape
    assert registry.value("latency") == 903  # sum of samples
    assert registry.get("latency").count == 2


def test_registry_rejects_unknown_schema():
    with pytest.raises(ValueError, match="schema"):
        MetricsRegistry.from_dict({"schema": 999, "metrics": []})


def test_registry_merge_policies():
    first = MetricsRegistry.from_stats({
        "ops": 10, "rob_peak_occupancy": 5, "tracker_storage_bits": 128,
        "l1d_miss_rate": 0.2})
    second = MetricsRegistry.from_stats({
        "ops": 32, "rob_peak_occupancy": 3, "tracker_storage_bits": 256,
        "l1d_miss_rate": 0.4})
    merged = first.merge(second).as_stats()
    assert merged["ops"] == 42                         # sum
    assert merged["rob_peak_occupancy"] == 5           # max
    assert merged["tracker_storage_bits"] == 256       # last
    assert merged["l1d_miss_rate"] == pytest.approx(0.3)  # mean of samples


def test_registry_merge_rejects_kind_mismatch():
    counters = MetricsRegistry()
    counters.inc("x")
    gauges = MetricsRegistry()
    gauges.set("x", 1)
    with pytest.raises(ValueError, match="cannot merge"):
        counters.merge(gauges)


def test_registry_from_stats_skip_matches_window_local_convention():
    stats = {"cycles": 100, "first_commit_cycle": 7}
    registry = MetricsRegistry.from_stats(stats, skip=("first_commit_cycle",))
    assert "first_commit_cycle" not in registry.as_stats()
    assert registry.as_stats()["cycles"] == 100


def test_core_metrics_view_matches_result_stats():
    config = scheme_config("isrb")
    core = Core(config)
    result = core.run(generate_trace("move_chain", max_ops=800, seed=1))
    assert core.metrics().as_stats() == result.stats


# -- trace schema and exports ---------------------------------------------------------


def test_trace_config_validates_window():
    assert TraceConfig(start=10, limit=5).end == 15
    for bad in ({"start": -1}, {"limit": 0}, {"max_events": 0}):
        with pytest.raises(ValueError):
            TraceConfig(**bad)


def test_traced_events_conform_to_schema():
    _, tracer = traced_run()
    assert tracer.events, "traced window recorded no events"
    for event in tracer.events:
        for field in EVENT_REQUIRED_FIELDS:
            assert field in event, f"event missing {field}: {event}"
        assert event["stage"] in STAGES
        assert tracer.config.start <= event["seq"] < tracer.config.end
        assert event["attempt"] >= 0
        assert event["cycle"] >= 0
    seen_stages = {event["stage"] for event in tracer.events}
    # alias_trap commits, executes and (by construction) squashes.
    assert {"fetch", "rename", "dispatch", "issue", "execute", "writeback",
            "commit", "squash"} <= seen_stages


def test_trace_jsonl_header_and_events_parse():
    _, tracer = traced_run()
    lines = tracer.to_jsonl().splitlines()
    header = json.loads(lines[0])
    assert header["schema"] == TRACE_SCHEMA_VERSION
    assert header["workload"] == "alias_trap"
    assert header["events"] == len(lines) - 1
    for line in lines[1:]:
        json.loads(line)


def test_chrome_trace_is_well_formed():
    _, tracer = traced_run()
    document = json.loads(json.dumps(tracer.to_chrome_trace()))
    events = document["traceEvents"]
    assert isinstance(events, list) and events
    phases = {event["ph"] for event in events}
    assert phases <= {"M", "X", "i"}
    assert "X" in phases
    for event in events:
        assert "pid" in event
        if event["ph"] == "X":
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["args"]["scheme"] == "isrb"
    assert document["otherData"]["schema"] == TRACE_SCHEMA_VERSION


def test_kanata_export_parses():
    _, tracer = traced_run()
    lines = tracer.to_kanata().splitlines()
    assert lines[0] == "Kanata\t0004"
    assert lines[1].startswith("C=\t")
    kinds = {line.split("\t")[0] for line in lines[2:]}
    assert {"I", "L", "S", "E", "R", "C"} <= kinds
    # Retire commands carry type 0 (commit) or 1 (squash); alias_trap has both.
    retire_types = {line.split("\t")[3] for line in lines if line.startswith("R\t")}
    assert retire_types == {"0", "1"}


def test_tracer_event_cap_truncates_instead_of_growing():
    config = scheme_config("isrb").with_trace(start=0, limit=256, max_events=10)
    core = Core(config)
    core.run(generate_trace("alias_trap", max_ops=1_000, seed=1))
    assert core.tracer.truncated
    assert len(core.tracer.events) == 10
    assert core.tracer.header()["truncated"] is True


def test_timeline_rows_track_squash_attempts():
    _, tracer = traced_run()
    rows = tracer.timeline()
    assert any(row["squashed"] for row in rows)
    assert any(row["attempt"] > 0 for row in rows), \
        "squashed micro-ops should re-fetch under a new attempt"
    summary = tracer.summary()
    assert summary.value("traced_instructions") == len(rows)
    assert summary.value("traced_squashes") == \
        sum(1 for row in rows if row["squashed"])


# -- the zero-overhead invariant ------------------------------------------------------


@pytest.mark.parametrize("scheme", known_schemes())
def test_traced_run_is_bit_identical(scheme):
    trace = generate_trace("alias_trap", max_ops=1_200, seed=1)
    plain_core = Core(scheme_config(scheme))
    plain = plain_core.run(trace)
    traced_core = Core(scheme_config(scheme).with_trace(limit=128))
    traced = traced_core.run(trace)
    assert traced.cycles == plain.cycles
    assert traced.stats == plain.stats
    assert traced_core.snapshot().digest() == plain_core.snapshot().digest()


def test_trace_exports_are_byte_stable_across_runs():
    """No wall times, ids or ordering noise in any gated trace artifact."""
    first_result, first = traced_run()
    second_result, second = traced_run()
    assert first.to_jsonl() == second.to_jsonl()
    assert json.dumps(first.to_chrome_trace(), sort_keys=True) == \
        json.dumps(second.to_chrome_trace(), sort_keys=True)
    assert first.to_kanata() == second.to_kanata()
    assert first_result.stats == second_result.stats


def test_report_artifact_ignores_observability(tmp_path):
    """sweep.json is byte-identical with and without logger/progress wired."""
    spec = SweepSpec(schemes=("isrb",), workloads=("move_chain",), max_ops=500)
    quiet = run_sweep(spec, cache_dir=None)
    logged = run_sweep(spec, cache_dir=None,
                       logger=RunLogger(path=tmp_path / "run.jsonl"),
                       progress=ProgressReporter(stream=open("/dev/null", "w"))
                       .job_progress)
    assert logged.to_json() == quiet.to_json()


# -- run logger and progress ----------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_run_logger_phases_and_warnings(tmp_path):
    clock = FakeClock()
    path = tmp_path / "run.jsonl"
    with RunLogger(path=path, clock=clock, wall_clock=clock) as logger:
        with logger.phase("trace_build", traces=3):
            clock.now += 1.5
        with logger.phase("execute"):
            clock.now += 2.0
        with logger.phase("execute"):
            clock.now += 0.5
        logger.warning("job_failed", job_id="w__v", error="boom")
    assert logger.phase_seconds == {"trace_build": 1.5, "execute": 2.5}
    assert [w["event"] for w in logger.warnings] == ["job_failed"]

    records = [json.loads(line) for line in path.read_text().splitlines()]
    ends = [r for r in records if r["event"] == "phase_end"]
    assert [(r["phase"], r["seconds"]) for r in ends] == \
        [("trace_build", 1.5), ("execute", 2.0), ("execute", 0.5)]
    assert ends[0]["traces"] == 3
    assert records[-1]["level"] == "warning"


def test_format_eta():
    assert format_eta(0) == "0:00"
    assert format_eta(65) == "1:05"
    assert format_eta(3_725) == "1:02:05"


def test_progress_reporter_rate_and_eta(tmp_path):
    stream = open(tmp_path / "progress.txt", "w")
    clock = FakeClock()
    reporter = ProgressReporter(stream=stream, label="cells", clock=clock)
    for completed in (1, 2, 3, 4):
        reporter.update(completed, 10, detail=f"job{completed}")
        clock.now += 2.0
    stream.close()
    lines = (tmp_path / "progress.txt").read_text().splitlines()
    assert lines[0].startswith("[1/10]")
    assert "cells/s" not in lines[0]  # one sample: no measurable rate yet
    # By the fourth update, 4 simulated cells over 6 seconds.
    assert "0.7 cells/s" in lines[3]
    assert "ETA 0:09" in lines[3]


def test_progress_reporter_excludes_stored_cells_from_rate(tmp_path):
    stream = open(tmp_path / "progress.txt", "w")
    clock = FakeClock()
    reporter = ProgressReporter(stream=stream, clock=clock)
    reporter.update(1, 4, simulated=False)
    clock.now += 10.0
    reporter.update(2, 4, simulated=True)
    clock.now += 1.0
    reporter.update(3, 4, simulated=True)
    stream.close()
    last = (tmp_path / "progress.txt").read_text().splitlines()[-1]
    # Rate counts the 2 simulated cells over 11s, not 3 cells.
    assert "0.2 cells/s" in last


# -- failure surfacing ----------------------------------------------------------------


def test_failed_job_becomes_warning_and_footer_line():
    jobs = [Job(job_id="nope__isrb", workload="no_such_workload",
                config=scheme_config("isrb"), max_ops=500, seed=1)]
    logger = RunLogger()
    results = run_jobs(jobs, logger=logger)
    assert not results[0].ok
    assert len(logger.warnings) == 1
    warning = logger.warnings[0]
    assert warning["event"] == "job_failed"
    assert warning["job_id"] == "nope__isrb"
    assert "no_such_workload" in warning["error"]

    report = build_report(results)
    footer = report.to_markdown().splitlines()
    assert any("1 job(s) failed:" in line for line in footer)
    gist = [line for line in footer if "`nope__isrb`" in line]
    assert gist and "no_such_workload" in gist[0]
    assert "Traceback" not in gist[0]  # one-line gist, not the full traceback


# -- the trace CLI --------------------------------------------------------------------


def test_trace_cli_end_to_end(tmp_path, capsys):
    code = main(["trace", "alias_trap", "--max-ops", "1200",
                 "--window", "64", "--out-dir", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "traced window: seq [0, 64)" in out

    header = json.loads((tmp_path / "trace.jsonl").read_text().splitlines()[0])
    assert header["schema"] == TRACE_SCHEMA_VERSION
    chrome = json.loads((tmp_path / "trace.chrome.json").read_text())
    assert chrome["traceEvents"]
    assert (tmp_path / "trace.kanata").read_text().startswith("Kanata\t0004")
    svg = (tmp_path / "timeline.svg").read_text()
    xml.dom.minidom.parseString(svg)  # well-formed XML
    assert "pipeline timeline" in svg


def test_trace_cli_rejects_unknown_workload(tmp_path, capsys):
    assert main(["trace", "no_such_workload",
                 "--out-dir", str(tmp_path)]) == 2
    assert "no_such_workload" in capsys.readouterr().err


def test_run_cli_trace_out(tmp_path, capsys):
    code = main(["run", "move_chain", "--max-ops", "600",
                 "--trace-out", str(tmp_path), "--trace-window", "32"])
    assert code == 0
    for name in ("trace.jsonl", "trace.chrome.json", "trace.kanata",
                 "timeline.svg"):
        assert (tmp_path / name).stat().st_size > 0


def test_run_cli_trace_out_requires_full_detail(tmp_path, capsys):
    code = main(["run", "move_chain", "--max-ops", "600",
                 "--trace-out", str(tmp_path), "--sample-period", "200"])
    assert code == 2
    assert "--sample-period" in capsys.readouterr().err
