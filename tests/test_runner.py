"""Parallel runner round-trip and partial-failure tests."""

import dataclasses

from repro.experiments.grid import SweepSpec
from repro.experiments.runner import run_jobs, run_sweep


def small_spec(**overrides):
    defaults = dict(schemes=("isrb",), workloads=("move_chain",), max_ops=800)
    defaults.update(overrides)
    return SweepSpec(**defaults)


def test_two_job_parallel_round_trip(tmp_path):
    jobs = small_spec().expand()
    assert len(jobs) == 2
    serial = run_jobs(jobs, workers=1, cache_dir=str(tmp_path))
    parallel = run_jobs(jobs, workers=2, cache_dir=str(tmp_path))
    assert all(result.ok for result in parallel)
    # Input order is preserved and parallel execution is cycle-identical.
    for one, two in zip(serial, parallel):
        assert one.job.job_id == two.job.job_id
        assert one.result.cycles == two.result.cycles
        assert one.result.stats == two.result.stats


def test_partial_failure_does_not_abort_the_sweep(tmp_path):
    jobs = small_spec().expand()
    broken = dataclasses.replace(jobs[0], workload="no_such_workload",
                                 job_id="broken__job")
    results = run_jobs([broken, jobs[1]], workers=2, cache_dir=str(tmp_path))
    assert results[0].ok is False
    assert "no_such_workload" in results[0].error
    assert results[1].ok is True


def test_run_sweep_uses_the_trace_cache_once_per_workload(tmp_path):
    spec = SweepSpec(schemes=("isrb", "refcount_checkpoint"),
                     workloads=("spill_reload", "move_chain"), max_ops=800)
    report = run_sweep(spec, workers=2, cache_dir=str(tmp_path / "cache"))
    # 6 jobs, but only one functional execution per workload.
    assert report.meta["jobs"] == 6
    assert report.cache_stats["traces_generated"] == 2
    assert report.cache_stats["traces_reused"] == 0
    assert not report.failures
    assert set(report.speedups) == {"spill_reload", "move_chain"}
    for workload in report.speedups:
        for speedup in report.speedups[workload].values():
            assert speedup > 0.5
    # Re-running the same sweep reuses every trace.
    again = run_sweep(spec, workers=1, cache_dir=str(tmp_path / "cache"))
    assert again.cache_stats["traces_generated"] == 0
    assert again.cache_stats["traces_reused"] == 2
    assert again.speedups == report.speedups


def test_run_jobs_with_cold_cache_writes_the_trace_back(tmp_path):
    from repro.experiments.cache import TraceCache

    jobs = small_spec().expand()
    cache = TraceCache(tmp_path / "cold")
    assert cache.get(*jobs[0].trace_key) is None
    run_jobs(jobs, workers=1, cache_dir=str(tmp_path / "cold"))
    # The first job's miss was persisted, so later jobs (and runs) hit.
    assert TraceCache(tmp_path / "cold").get(*jobs[0].trace_key) is not None


def test_progress_callback_sees_every_job(tmp_path):
    jobs = small_spec().expand()
    seen = []
    run_jobs(jobs, workers=1, cache_dir=str(tmp_path),
             progress=lambda done, total, result: seen.append((done, total)))
    assert seen == [(1, 2), (2, 2)]
