"""Serialization helpers on SimulationResult and CoreConfig."""

import re

import pytest

from repro.pipeline.config import CoreConfig
from repro.pipeline.result import SimulationResult


def test_result_to_from_dict_roundtrip():
    result = SimulationResult(workload="w", config_label="ME+isrb:32",
                              cycles=1_234, instructions=2_000,
                              stats={"committed_loads": 17.0})
    data = result.to_dict()
    assert data["ipc"] == pytest.approx(2_000 / 1_234)
    rebuilt = SimulationResult.from_dict(data)
    assert rebuilt == result
    assert rebuilt.ipc == pytest.approx(result.ipc)


def test_variant_name_is_filesystem_safe_and_distinct():
    base = CoreConfig()
    names = {
        base.variant_name(),
        base.with_move_elimination().variant_name(),
        base.with_smb().variant_name(),
        base.with_move_elimination().with_smb().variant_name(),
        base.with_tracker("refcount_checkpoint", entries=None).variant_name(),
        base.with_tracker("isrb", entries=16).variant_name(),
    }
    assert len(names) == 6
    for name in names:
        assert re.fullmatch(r"[a-z0-9._-]+", name), name


def test_config_to_dict_records_sweep_knobs():
    config = CoreConfig().with_tracker("isrb", entries=16, counter_bits=4)
    config = config.with_move_elimination().with_smb()
    data = config.to_dict()
    assert data["tracker"] == {"scheme": "isrb", "entries": 16,
                               "counter_bits": 4, "checkpoints": 8}
    assert data["move_elimination"]["enabled"] is True
    assert data["smb"]["predictor"] == "tage"
    assert data["variant"] == config.variant_name()


def test_speedup_over_guards():
    a = SimulationResult("w", "a", cycles=100, instructions=500)
    b = SimulationResult("w", "b", cycles=50, instructions=500)
    assert b.speedup_over(a) == pytest.approx(2.0)
    other = SimulationResult("x", "a", cycles=100, instructions=500)
    with pytest.raises(ValueError):
        other.speedup_over(a)
