"""Reclaim-decision and cost-model tests across the tracker schemes."""

import pytest

from repro.core.refcount import (
    CheckpointedReferenceCounterTracker,
    ReferenceCounterTracker,
)
from repro.core.tracker import ReclaimDecision, TrackerConfig, make_tracker


def test_unshared_register_frees_immediately():
    tracker = make_tracker(TrackerConfig(scheme="isrb"))
    assert tracker.reclaim(42, arch_reg=0) is ReclaimDecision.FREE


def test_shared_register_is_kept_until_sharers_commit():
    tracker = make_tracker(TrackerConfig(scheme="refcount"))
    assert tracker.try_share(10, dest_arch=1)
    assert tracker.reclaim(10, arch_reg=1) is ReclaimDecision.KEEP
    tracker.on_share_commit(10)
    assert tracker.reclaim(10, arch_reg=5) is ReclaimDecision.FREE


def test_make_tracker_schemes():
    assert make_tracker(TrackerConfig(scheme="refcount")).name == "refcount"
    tracker = make_tracker(TrackerConfig(scheme="refcount_checkpoint"))
    assert isinstance(tracker, CheckpointedReferenceCounterTracker)
    assert tracker.name == "refcount_checkpoint"
    with pytest.raises(ValueError):
        make_tracker(TrackerConfig(scheme="bogus"))


def test_refcount_recovery_is_a_walk_but_checkpointed_is_single_cycle():
    walk = ReferenceCounterTracker(TrackerConfig(scheme="refcount"))
    ckpt = CheckpointedReferenceCounterTracker(
        TrackerConfig(scheme="refcount_checkpoint"))
    # Section 4.2: walking 100 squashed instructions 8-wide takes 13 cycles.
    assert walk.recovery_cycles(100, walk_width=8) == 13
    assert ckpt.recovery_cycles(100, walk_width=8) == 1
    # Checkpointing counters costs one counter per physical register.
    assert ckpt.checkpoint_bits() == ckpt.config.num_phys_regs * 3


def test_refcount_capacity_never_limits_sharing():
    tracker = ReferenceCounterTracker(
        TrackerConfig(scheme="refcount", entries=4, counter_bits=None))
    for preg in range(64):
        assert tracker.try_share(preg, dest_arch=preg % 32)
    assert tracker.occupancy() == 64
