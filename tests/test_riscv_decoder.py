"""RV32I decoder conformance: golden encodings and round-trip properties.

The golden table below was assembled *independently* of the decoder, by
writing out each format's bit layout straight from the RISC-V unprivileged
spec -- so the decoder and the table can only agree by both being right.
The property tests then drive ``encode``/``decode`` round trips over every
format with randomly drawn fields.
"""

from __future__ import annotations

import random

import pytest

from repro.isa.riscv import DecodeError, decode, decode_all, encode

# (mnemonic, instruction word, expected non-zero fields).  Fields a format
# does not encode are asserted to be 0.
GOLDEN = [
    # R-type: every OP funct3/funct7 point.
    ("add", 0x003100B3, dict(rd=1, rs1=2, rs2=3)),
    ("sub", 0x40628233, dict(rd=4, rs1=5, rs2=6)),
    ("sll", 0x009413B3, dict(rd=7, rs1=8, rs2=9)),
    ("slt", 0x00C5A533, dict(rd=10, rs1=11, rs2=12)),
    ("sltu", 0x00F736B3, dict(rd=13, rs1=14, rs2=15)),
    ("xor", 0x0128C833, dict(rd=16, rs1=17, rs2=18)),
    ("srl", 0x015A59B3, dict(rd=19, rs1=20, rs2=21)),
    ("sra", 0x418BDB33, dict(rd=22, rs1=23, rs2=24)),
    ("or", 0x01BD6CB3, dict(rd=25, rs1=26, rs2=27)),
    ("and", 0x01EEFE33, dict(rd=28, rs1=29, rs2=30)),
    # I-type ALU, immediates at both extremes.
    ("addi", 0xFFF10093, dict(rd=1, rs1=2, imm=-1)),
    ("slti", 0x06422193, dict(rd=3, rs1=4, imm=100)),
    ("sltiu", 0x7FF33293, dict(rd=5, rs1=6, imm=2047)),
    ("xori", 0x80044393, dict(rd=7, rs1=8, imm=-2048)),
    ("ori", 0x0FF56493, dict(rd=9, rs1=10, imm=255)),
    ("andi", 0x00F67593, dict(rd=11, rs1=12, imm=15)),
    # Shifts carry the 5-bit shamt in the rs2 field.
    ("slli", 0x00111093, dict(rd=1, rs1=2, imm=1)),
    ("srli", 0x01F25193, dict(rd=3, rs1=4, imm=31)),
    ("srai", 0x40735293, dict(rd=5, rs1=6, imm=7)),
    # Loads (I-type) and stores (S-type, split immediate).
    ("lb", 0xFFC10083, dict(rd=1, rs1=2, imm=-4)),
    ("lh", 0x00221183, dict(rd=3, rs1=4, imm=2)),
    ("lw", 0x00032283, dict(rd=5, rs1=6, imm=0)),
    ("lbu", 0x00144383, dict(rd=7, rs1=8, imm=1)),
    ("lhu", 0x00655483, dict(rd=9, rs1=10, imm=6)),
    ("sb", 0xFE110FA3, dict(rs1=2, rs2=1, imm=-1)),
    ("sh", 0x00321123, dict(rs1=4, rs2=3, imm=2)),
    ("sw", 0x7E532E23, dict(rs1=6, rs2=5, imm=2044)),
    # B-type: scrambled immediate bits, both range extremes.
    ("beq", 0x00208463, dict(rs1=1, rs2=2, imm=8)),
    ("bne", 0xFE419CE3, dict(rs1=3, rs2=4, imm=-8)),
    ("blt", 0x7E62CFE3, dict(rs1=5, rs2=6, imm=4094)),
    ("bge", 0x8083D063, dict(rs1=7, rs2=8, imm=-4096)),
    ("bltu", 0x00A4E863, dict(rs1=9, rs2=10, imm=16)),
    ("bgeu", 0xFEC5F0E3, dict(rs1=11, rs2=12, imm=-32)),
    # U-type: imm arrives already shifted.
    ("lui", 0x123452B7, dict(rd=5, imm=0x12345000)),
    ("auipc", 0xFFFFF317, dict(rd=6, imm=0xFFFFF000)),
    # J-type: scrambled 21-bit immediate, extremes and the x0 link.
    ("jal", 0x001000EF, dict(rd=1, imm=2048)),
    ("jal", 0xFFDFF06F, dict(rd=0, imm=-4)),
    ("jal", 0x7FFFFFEF, dict(rd=31, imm=1048574)),
    ("jalr", 0x000100E7, dict(rd=1, rs1=2, imm=0)),
    ("jalr", 0xFF808067, dict(rd=0, rs1=1, imm=-8)),
    # SYSTEM / MISC-MEM.
    ("ecall", 0x00000073, dict()),
    ("ebreak", 0x00100073, dict()),
    ("fence", 0x0000000F, dict()),
    ("fence.i", 0x0000100F, dict()),
]


@pytest.mark.parametrize("mnemonic,word,fields", GOLDEN,
                         ids=[f"{m}-{w:08x}" for m, w, _ in GOLDEN])
def test_golden_decode(mnemonic, word, fields):
    """Hand-assembled encodings decode to the expected mnemonic and fields."""
    insn = decode(word)
    assert insn.mnemonic == mnemonic
    assert insn.raw == word
    for name in ("rd", "rs1", "rs2", "imm"):
        assert getattr(insn, name) == fields.get(name, 0), (
            f"{mnemonic} {word:#010x}: field {name}")


@pytest.mark.parametrize("mnemonic,word,fields", GOLDEN,
                         ids=[f"{m}-{w:08x}" for m, w, _ in GOLDEN])
def test_golden_encode_is_exact_inverse(mnemonic, word, fields):
    """Re-encoding the golden fields reproduces the exact instruction word."""
    assert encode(mnemonic, **fields) == word


def test_golden_covers_every_format():
    formats = {decode(word).fmt for _, word, _ in GOLDEN}
    assert formats == {"R", "I", "S", "B", "U", "J"}


def test_str_renders_without_crashing():
    for _, word, _ in GOLDEN:
        assert str(decode(word))


# -- round-trip properties over all formats ------------------------------------------

_R_MNEMONICS = ("add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra",
                "or", "and")
_I_MNEMONICS = ("addi", "slti", "sltiu", "xori", "ori", "andi", "jalr",
                "lb", "lh", "lw", "lbu", "lhu")
_SHIFTS = ("slli", "srli", "srai")
_S_MNEMONICS = ("sb", "sh", "sw")
_B_MNEMONICS = ("beq", "bne", "blt", "bge", "bltu", "bgeu")

N_DRAWS = 200


def _assert_roundtrip(mnemonic, **fields):
    word = encode(mnemonic, **fields)
    insn = decode(word)
    assert insn.mnemonic == mnemonic, f"{fields} -> {word:#010x}"
    for name, value in fields.items():
        assert getattr(insn, name) == value, (
            f"{mnemonic} {fields}: {name} decoded as {getattr(insn, name)}")
    assert insn.raw == word


def test_roundtrip_r_type():
    rng = random.Random(1)
    for _ in range(N_DRAWS):
        _assert_roundtrip(rng.choice(_R_MNEMONICS), rd=rng.randrange(32),
                          rs1=rng.randrange(32), rs2=rng.randrange(32))


def test_roundtrip_i_type():
    rng = random.Random(2)
    for _ in range(N_DRAWS):
        _assert_roundtrip(rng.choice(_I_MNEMONICS), rd=rng.randrange(32),
                          rs1=rng.randrange(32), imm=rng.randrange(-2048, 2048))


def test_roundtrip_shifts():
    rng = random.Random(3)
    for _ in range(N_DRAWS):
        _assert_roundtrip(rng.choice(_SHIFTS), rd=rng.randrange(32),
                          rs1=rng.randrange(32), imm=rng.randrange(32))


def test_roundtrip_s_type():
    rng = random.Random(4)
    for _ in range(N_DRAWS):
        _assert_roundtrip(rng.choice(_S_MNEMONICS), rs1=rng.randrange(32),
                          rs2=rng.randrange(32), imm=rng.randrange(-2048, 2048))


def test_roundtrip_b_type():
    rng = random.Random(5)
    for _ in range(N_DRAWS):
        _assert_roundtrip(rng.choice(_B_MNEMONICS), rs1=rng.randrange(32),
                          rs2=rng.randrange(32),
                          imm=rng.randrange(-2048, 2048) * 2)


def test_roundtrip_u_type():
    rng = random.Random(6)
    for _ in range(N_DRAWS):
        _assert_roundtrip(rng.choice(("lui", "auipc")), rd=rng.randrange(32),
                          imm=rng.randrange(1 << 20) << 12)


def test_roundtrip_j_type():
    rng = random.Random(7)
    for _ in range(N_DRAWS):
        _assert_roundtrip("jal", rd=rng.randrange(32),
                          imm=rng.randrange(-(1 << 19), 1 << 19) * 2)


def test_roundtrip_system():
    for mnemonic in ("ecall", "ebreak", "fence", "fence.i"):
        _assert_roundtrip(mnemonic)


# -- rejection behaviour -------------------------------------------------------------


@pytest.mark.parametrize("word", [
    0x00000000,           # all-zero (compressed space)
    0x00000001,           # low bits != 11
    0x0000007B,           # unknown major opcode (0b1111011)
    0x02C585B3,           # mul: RV32M funct7 on the OP major opcode
    0x00001073,           # csrrw: unsupported SYSTEM funct3
    0x00200073,           # SYSTEM funct12 beyond ebreak (uret)
    0x40309093,           # slli with funct7 bits set
    0xC0015113,           # srai with a stray funct7 bit (funct7=0x60)
    0x0000A063,           # branch funct3=010 is unassigned
    0x00033003,           # load funct3=011 (ld) is RV64-only
    0x00033FA3,           # store funct3=011 (sd) is RV64-only
    0x00809067,           # jalr with funct3 != 0
])
def test_decode_rejects_invalid_words(word):
    with pytest.raises(DecodeError):
        decode(word)


def test_decode_all_keeps_pc_dense_with_none_placeholders():
    blob = (encode("addi", rd=1, rs1=0, imm=5).to_bytes(4, "little")
            + (0xFFFFFFFF).to_bytes(4, "little")
            + encode("ecall").to_bytes(4, "little")
            + b"\x99")                     # trailing partial word is ignored
    decoded = decode_all(blob)
    assert len(decoded) == 3
    assert decoded[0].mnemonic == "addi" and decoded[0].imm == 5
    assert decoded[1] is None
    assert decoded[2].mnemonic == "ecall"


@pytest.mark.parametrize("kwargs,match", [
    (dict(mnemonic="addi", rd=32), "out of range"),
    (dict(mnemonic="addi", rd=1, imm=2048), "outside"),
    (dict(mnemonic="sw", rs1=1, rs2=2, imm=-2049), "outside"),
    (dict(mnemonic="beq", rs1=1, rs2=2, imm=3), "even"),
    (dict(mnemonic="beq", rs1=1, rs2=2, imm=4096), "outside"),
    (dict(mnemonic="jal", rd=1, imm=7), "even"),
    (dict(mnemonic="jal", rd=1, imm=1 << 20), "outside"),
    (dict(mnemonic="slli", rd=1, rs1=1, imm=32), "outside"),
    (dict(mnemonic="lui", rd=1, imm=0x1234), "imm20"),
    (dict(mnemonic="mul", rd=1), "unknown RV32I mnemonic"),
])
def test_encode_rejects_out_of_range_fields(kwargs, match):
    with pytest.raises(ValueError, match=match):
        encode(**kwargs)
