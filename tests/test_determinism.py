"""Determinism regression tests for the experiment harness.

The sweep artifact is the unit of scientific record, so it must be a pure
function of the :class:`SweepSpec`: re-running a sweep, or running it on a
different worker-pool size, must yield byte-identical report JSON.  A
golden markdown snapshot additionally pins the table *format* (and the
actual speedup numbers of a tiny sweep) against accidental drift.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.grid import SweepSpec
from repro.experiments.runner import run_sweep

GOLDEN_SWEEP = Path(__file__).parent / "golden" / "sweep_small.md"


def test_run_sweep_twice_is_byte_identical(small_spec):
    first = run_sweep(small_spec, workers=1, cache_dir=None)
    second = run_sweep(small_spec, workers=1, cache_dir=None)
    assert first.to_json() == second.to_json()


def test_pool_size_does_not_change_artifact(small_spec, tmp_path):
    # Fresh cache directory per run so cache statistics are identical too.
    serial = run_sweep(small_spec, workers=1, cache_dir=str(tmp_path / "serial"))
    parallel = run_sweep(small_spec, workers=3, cache_dir=str(tmp_path / "parallel"))
    assert serial.to_json() == parallel.to_json()


def test_cache_does_not_change_artifact_tables(small_spec, tmp_path):
    """Cached and uncached runs agree on every table (only cache_stats differ)."""
    uncached = run_sweep(small_spec, workers=1, cache_dir=None)
    cached = run_sweep(small_spec, workers=1, cache_dir=str(tmp_path / "cache"))
    assert uncached.to_markdown() == cached.to_markdown()
    assert uncached.to_csv() == cached.to_csv()
    uncached_dict = uncached.to_dict()
    cached_dict = cached.to_dict()
    for key in ("workloads", "variants", "speedups", "geomean_speedups",
                "ipc", "results", "failures", "meta"):
        assert uncached_dict[key] == cached_dict[key]


def test_sweep_table_matches_golden_snapshot(small_spec):
    """The 2-workload x 2-scheme table matches the committed snapshot.

    Regenerate with ``python tests/golden/regenerate.py`` only when the
    table format or the simulated machine intentionally changed.
    """
    report = run_sweep(small_spec, workers=1, cache_dir=None)
    assert report.to_markdown() + "\n" == GOLDEN_SWEEP.read_text()


@pytest.fixture(scope="module")
def sampled_spec() -> SweepSpec:
    return SweepSpec(
        schemes=("isrb",),
        workloads=("spill_reload", "move_chain"),
        max_ops=3_000,
        seed=1,
        sample_period=1_000,
        sample_window=300,
        sample_warmup=200,
    )


def test_sampled_sweep_rerun_is_byte_identical(sampled_spec):
    """Two-speed mode is as deterministic as full-detail replay."""
    first = run_sweep(sampled_spec, workers=1, cache_dir=None)
    second = run_sweep(sampled_spec, workers=1, cache_dir=None)
    assert first.to_json() == second.to_json()
    assert first.meta["sampling"] == {"period": 1_000, "window": 300,
                                      "warmup": 200, "cooldown": 300}


def test_sampled_sweep_pool_size_does_not_change_artifact(sampled_spec):
    serial = run_sweep(sampled_spec, workers=1, cache_dir=None)
    parallel = run_sweep(sampled_spec, workers=3, cache_dir=None)
    assert serial.to_json() == parallel.to_json()


def test_sampled_sweep_caches_plans_not_traces(sampled_spec, tmp_path):
    """A cache dir holds shared-warmup plans for sampled sweeps, never traces.

    The checkpoint farm must not change a single table cell: cached,
    uncached and farm-less runs all aggregate identical results (the farm
    only removes redundant warmup work).
    """
    cache_dir = tmp_path / "c"
    cached = run_sweep(sampled_spec, workers=1, cache_dir=str(cache_dir))
    uncached = run_sweep(sampled_spec, workers=1, cache_dir=None)
    unfarmed = run_sweep(sampled_spec, workers=1, cache_dir=None, farm=False)
    assert cached.to_markdown() == uncached.to_markdown() == unfarmed.to_markdown()
    assert uncached.to_json() == unfarmed.to_json()
    cached_dict = cached.to_dict()
    uncached_dict = uncached.to_dict()
    for key in ("workloads", "variants", "speedups", "geomean_speedups",
                "ipc", "results", "failures", "meta"):
        assert cached_dict[key] == uncached_dict[key]
    # One plan per workload was generated and then shared by both jobs.
    assert cached.cache_stats["plans_generated"] == 2
    assert cached.cache_stats["plans_reused"] == 0
    assert len(list(cache_dir.rglob("*.plan.pkl"))) == 2
    assert not list(cache_dir.rglob("*.trace.pkl"))
    # A second sweep over the same cache re-uses every plan.
    again = run_sweep(sampled_spec, workers=1, cache_dir=str(cache_dir))
    assert again.cache_stats["plans_reused"] == 2
    assert again.to_markdown() == cached.to_markdown()


@pytest.fixture(scope="module")
def adaptive_spec() -> SweepSpec:
    return SweepSpec(
        schemes=("isrb",),
        workloads=("long_phase_mix",),
        max_ops=30_000,
        seed=1,
        sample_window=300,
        sample_warmup=200,
        sample_cooldown=150,
        sample_tolerance=0.05,
        sample_min_windows=2,
        sample_max_windows=8,
    )


def test_adaptive_sweep_rerun_is_byte_identical(adaptive_spec):
    """Error-budget window placement is a pure function of the spec: the
    stopping rule probes a deterministic machine, so re-running the sweep
    reproduces the artifact byte for byte."""
    first = run_sweep(adaptive_spec, workers=1, cache_dir=None)
    second = run_sweep(adaptive_spec, workers=1, cache_dir=None)
    assert first.to_json() == second.to_json()
    assert first.meta["sampling"] == {
        "period": 50_000, "window": 300, "warmup": 200, "cooldown": 150,
        "tolerance": 0.05, "min_windows": 2, "max_windows": 8}


def test_adaptive_sweep_pool_size_does_not_change_artifact(adaptive_spec):
    serial = run_sweep(adaptive_spec, workers=1, cache_dir=None)
    parallel = run_sweep(adaptive_spec, workers=3, cache_dir=None)
    assert serial.to_json() == parallel.to_json()


def test_resumed_sweep_artifact_is_byte_identical(small_spec, tmp_path):
    """A sweep killed mid-grid and resumed equals the uninterrupted bytes.

    The results store is the resume mechanism: the "killed" run only
    manages to append its first jobs, the resumed run supplies the rest,
    and sweep.json must come out byte-identical either way.
    """
    from repro.experiments.runner import run_jobs
    from repro.paper.store import ResultsStore

    uninterrupted = run_sweep(small_spec, workers=1, cache_dir=None)

    store_path = tmp_path / "results.jsonl"
    killed = ResultsStore(store_path)
    run_jobs(small_spec.expand()[:2], store=killed)
    killed.close()  # the process dies here; two cells survived on disk

    resumed = run_sweep(small_spec, workers=1, cache_dir=None,
                        store=ResultsStore(store_path))
    assert resumed.to_json() == uninterrupted.to_json()

    out_a = tmp_path / "a"
    out_b = tmp_path / "b"
    uninterrupted.save(out_a)
    resumed.save(out_b)
    assert (out_a / "sweep.json").read_bytes() == (out_b / "sweep.json").read_bytes()


def test_paper_figures_survive_interruption_byte_identically(tmp_path):
    """An interrupted ``repro paper`` grid re-renders identical figures.json.

    Uninterrupted run vs a run whose store starts with only a partial
    grid: figures.json and REPORT.md must match byte for byte, because
    both are pure functions of the simulation results.
    """
    from repro.experiments.runner import run_jobs
    from repro.paper import FIGURES, run_paper
    from repro.paper.store import ResultsStore

    clean = run_paper(figures=("9",), smoke=True, out_dir=tmp_path / "clean")

    out = tmp_path / "resumed"
    store_path = out / "store" / "results.jsonl"
    partial = ResultsStore(store_path)
    jobs = FIGURES["9"].slices(smoke=True)[0].spec.expand()
    run_jobs(jobs[:3], store=partial)
    partial.close()  # interrupted here

    resumed = run_paper(figures=("9",), smoke=True, out_dir=out)
    assert resumed.simulated == len(jobs) - 3
    assert (resumed.paths["figures_json"].read_bytes()
            == clean.paths["figures_json"].read_bytes())
    assert (resumed.paths["report"].read_bytes()
            == clean.paths["report"].read_bytes())
    assert (resumed.paths["figure9"].read_bytes()
            == clean.paths["figure9"].read_bytes())


def test_store_corruption_degrades_to_clean_rerun_with_same_bytes(small_spec,
                                                                  tmp_path):
    """A trashed results store never changes the artifact, only the work."""
    from repro.paper.store import ResultsStore

    reference = run_sweep(small_spec, workers=1, cache_dir=None)
    store_path = tmp_path / "results.jsonl"
    store_path.write_bytes(b"\xde\xad not a store \xbe\xef\n" * 20)
    rerun = run_sweep(small_spec, workers=1, cache_dir=None,
                      store=ResultsStore(store_path))
    assert rerun.to_json() == reference.to_json()


def test_trace_generation_is_deterministic():
    from repro.workloads import generate_trace

    first = generate_trace("branchy", max_ops=1_000, seed=7)
    second = generate_trace("branchy", max_ops=1_000, seed=7)
    assert len(first) == len(second)
    assert all(a == b for a, b in zip(first.ops, second.ops))
    # A different seed must actually change the program's behaviour.
    other = generate_trace("branchy", max_ops=1_000, seed=8)
    assert any(a != b for a, b in zip(first.ops, other.ops))
