"""Determinism regression tests for the experiment harness.

The sweep artifact is the unit of scientific record, so it must be a pure
function of the :class:`SweepSpec`: re-running a sweep, or running it on a
different worker-pool size, must yield byte-identical report JSON.  A
golden markdown snapshot additionally pins the table *format* (and the
actual speedup numbers of a tiny sweep) against accidental drift.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.grid import SweepSpec
from repro.experiments.runner import run_sweep

GOLDEN_SWEEP = Path(__file__).parent / "golden" / "sweep_small.md"


@pytest.fixture(scope="module")
def small_spec() -> SweepSpec:
    return SweepSpec(
        schemes=("isrb", "refcount_checkpoint"),
        workloads=("spill_reload", "move_chain"),
        max_ops=2_000,
        seed=1,
    )


def test_run_sweep_twice_is_byte_identical(small_spec):
    first = run_sweep(small_spec, workers=1, cache_dir=None)
    second = run_sweep(small_spec, workers=1, cache_dir=None)
    assert first.to_json() == second.to_json()


def test_pool_size_does_not_change_artifact(small_spec, tmp_path):
    # Fresh cache directory per run so cache statistics are identical too.
    serial = run_sweep(small_spec, workers=1, cache_dir=str(tmp_path / "serial"))
    parallel = run_sweep(small_spec, workers=3, cache_dir=str(tmp_path / "parallel"))
    assert serial.to_json() == parallel.to_json()


def test_cache_does_not_change_artifact_tables(small_spec, tmp_path):
    """Cached and uncached runs agree on every table (only cache_stats differ)."""
    uncached = run_sweep(small_spec, workers=1, cache_dir=None)
    cached = run_sweep(small_spec, workers=1, cache_dir=str(tmp_path / "cache"))
    assert uncached.to_markdown() == cached.to_markdown()
    assert uncached.to_csv() == cached.to_csv()
    uncached_dict = uncached.to_dict()
    cached_dict = cached.to_dict()
    for key in ("workloads", "variants", "speedups", "geomean_speedups",
                "ipc", "results", "failures", "meta"):
        assert uncached_dict[key] == cached_dict[key]


def test_sweep_table_matches_golden_snapshot(small_spec):
    """The 2-workload x 2-scheme table matches the committed snapshot.

    Regenerate with ``python tests/golden/regenerate.py`` only when the
    table format or the simulated machine intentionally changed.
    """
    report = run_sweep(small_spec, workers=1, cache_dir=None)
    assert report.to_markdown() + "\n" == GOLDEN_SWEEP.read_text()


@pytest.fixture(scope="module")
def sampled_spec() -> SweepSpec:
    return SweepSpec(
        schemes=("isrb",),
        workloads=("spill_reload", "move_chain"),
        max_ops=3_000,
        seed=1,
        sample_period=1_000,
        sample_window=300,
        sample_warmup=200,
    )


def test_sampled_sweep_rerun_is_byte_identical(sampled_spec):
    """Two-speed mode is as deterministic as full-detail replay."""
    first = run_sweep(sampled_spec, workers=1, cache_dir=None)
    second = run_sweep(sampled_spec, workers=1, cache_dir=None)
    assert first.to_json() == second.to_json()
    assert first.meta["sampling"] == {"period": 1_000, "window": 300,
                                      "warmup": 200, "cooldown": 300}


def test_sampled_sweep_pool_size_does_not_change_artifact(sampled_spec):
    serial = run_sweep(sampled_spec, workers=1, cache_dir=None)
    parallel = run_sweep(sampled_spec, workers=3, cache_dir=None)
    assert serial.to_json() == parallel.to_json()


def test_sampled_sweep_caches_plans_not_traces(sampled_spec, tmp_path):
    """A cache dir holds shared-warmup plans for sampled sweeps, never traces.

    The checkpoint farm must not change a single table cell: cached,
    uncached and farm-less runs all aggregate identical results (the farm
    only removes redundant warmup work).
    """
    cache_dir = tmp_path / "c"
    cached = run_sweep(sampled_spec, workers=1, cache_dir=str(cache_dir))
    uncached = run_sweep(sampled_spec, workers=1, cache_dir=None)
    unfarmed = run_sweep(sampled_spec, workers=1, cache_dir=None, farm=False)
    assert cached.to_markdown() == uncached.to_markdown() == unfarmed.to_markdown()
    assert uncached.to_json() == unfarmed.to_json()
    cached_dict = cached.to_dict()
    uncached_dict = uncached.to_dict()
    for key in ("workloads", "variants", "speedups", "geomean_speedups",
                "ipc", "results", "failures", "meta"):
        assert cached_dict[key] == uncached_dict[key]
    # One plan per workload was generated and then shared by both jobs.
    assert cached.cache_stats["plans_generated"] == 2
    assert cached.cache_stats["plans_reused"] == 0
    assert len(list(cache_dir.rglob("*.plan.pkl"))) == 2
    assert not list(cache_dir.rglob("*.trace.pkl"))
    # A second sweep over the same cache re-uses every plan.
    again = run_sweep(sampled_spec, workers=1, cache_dir=str(cache_dir))
    assert again.cache_stats["plans_reused"] == 2
    assert again.to_markdown() == cached.to_markdown()


def test_trace_generation_is_deterministic():
    from repro.workloads import generate_trace

    first = generate_trace("branchy", max_ops=1_000, seed=7)
    second = generate_trace("branchy", max_ops=1_000, seed=7)
    assert len(first) == len(second)
    assert all(a == b for a, b in zip(first.ops, second.ops))
    # A different seed must actually change the program's behaviour.
    other = generate_trace("branchy", max_ops=1_000, seed=8)
    assert any(a != b for a, b in zip(first.ops, other.ops))
