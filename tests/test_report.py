"""Report aggregation math and export tests."""

import json

import pytest

from repro.experiments.grid import Job
from repro.experiments.report import SweepReport, build_report, geomean
from repro.experiments.runner import JobResult
from repro.pipeline.config import CoreConfig
from repro.pipeline.result import SimulationResult


def fake_result(workload, label, cycles, instructions=1_000):
    return SimulationResult(workload=workload, config_label=label,
                            cycles=cycles, instructions=instructions)


def fake_job(workload, variant="isrb", baseline=False):
    config = CoreConfig() if baseline else CoreConfig().with_move_elimination()
    return Job(job_id=f"{workload}__{'baseline' if baseline else variant}",
               workload=workload, config=config, max_ops=1_000, seed=1,
               is_baseline=baseline)


def ok(job, result):
    return JobResult(job=job, ok=True, result=result)


def test_geomean():
    assert geomean([2.0, 0.5]) == pytest.approx(1.0)
    assert geomean([1.2, 1.2, 1.2]) == pytest.approx(1.2)
    assert geomean([]) == 0.0
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_speedup_table_and_geomean_row():
    variant = CoreConfig().with_move_elimination().variant_name()
    results = []
    for workload, base_cycles, opt_cycles in (
            ("w1", 2_000, 1_000), ("w2", 1_000, 800)):
        results.append(ok(fake_job(workload, baseline=True),
                          fake_result(workload, "baseline", base_cycles)))
        results.append(ok(fake_job(workload),
                          fake_result(workload, "opt", opt_cycles)))
    report = build_report(results)
    assert report.workloads == ["w1", "w2"]
    assert report.speedups["w1"][variant] == pytest.approx(2.0)
    assert report.speedups["w2"][variant] == pytest.approx(1.25)
    assert report.geomean_speedups()[variant] == pytest.approx(
        (2.0 * 1.25) ** 0.5)


def test_missing_baseline_becomes_a_failure_not_a_crash():
    results = [ok(fake_job("w1"), fake_result("w1", "opt", 900))]
    report = build_report(results)
    assert report.speedups == {}
    assert len(report.failures) == 1
    assert report.failures[0]["error"] == "baseline run missing or failed"


def test_failed_jobs_are_reported():
    job = fake_job("w1")
    results = [JobResult(job=job, ok=False, error="boom")]
    report = build_report(results)
    assert report.failures[0]["job_id"] == job.job_id
    assert "boom" in report.failures[0]["error"]


def test_fully_failed_workload_still_gets_a_table_row():
    ok_results = [
        ok(fake_job("w1", baseline=True), fake_result("w1", "baseline", 2_000)),
        ok(fake_job("w1"), fake_result("w1", "opt", 1_000)),
    ]
    failed = [JobResult(job=fake_job("w2", baseline=True), ok=False, error="x"),
              JobResult(job=fake_job("w2"), ok=False, error="x")]
    report = build_report(ok_results + failed)
    assert report.workloads == ["w1", "w2"]
    markdown = report.to_markdown()
    assert "| w2 | FAIL |" in markdown
    assert "2 job(s) failed" in markdown


def test_incomparable_baseline_becomes_a_failure_not_a_crash():
    results = [
        ok(fake_job("w1", baseline=True),
           fake_result("w1", "baseline", 2_000, instructions=500)),
        ok(fake_job("w1"), fake_result("w1", "opt", 1_000, instructions=900)),
    ]
    report = build_report(results)
    assert report.speedups == {}
    assert "not comparable" in report.failures[0]["error"]


def test_markdown_and_csv_shape():
    variant = CoreConfig().with_move_elimination().variant_name()
    results = [
        ok(fake_job("w1", baseline=True), fake_result("w1", "baseline", 2_000)),
        ok(fake_job("w1"), fake_result("w1", "opt", 1_000)),
    ]
    report = build_report(results)
    markdown = report.to_markdown()
    assert f"| workload | {variant} |" in markdown
    assert "| w1 | 2.000 |" in markdown
    assert "**geomean**" in markdown
    csv_text = report.to_csv()
    assert csv_text.splitlines()[0] == f"workload,{variant}"
    assert csv_text.splitlines()[-1].startswith("geomean,2.0")


def test_json_roundtrip(tmp_path):
    results = [
        ok(fake_job("w1", baseline=True), fake_result("w1", "baseline", 2_000)),
        ok(fake_job("w1"), fake_result("w1", "opt", 1_000)),
    ]
    report = build_report(results, cache_stats={"traces_generated": 1},
                          meta={"max_ops": 1_000})
    paths = report.save(tmp_path, stem="sweep")
    data = json.loads(paths["json"].read_text())
    rebuilt = SweepReport.from_dict(data)
    assert rebuilt.speedups == report.speedups
    assert rebuilt.cache_stats == {"traces_generated": 1}
    assert rebuilt.results[0].cycles == 2_000
    assert rebuilt.to_markdown() == report.to_markdown()
