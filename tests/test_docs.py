"""Documentation gates: doctests for the public API, link-check for docs/.

Two cheap, high-value invariants:

* every worked example in the public-API module docstrings actually runs
  (``repro.experiments``, ``repro.pipeline.sampling``, ``repro.paper`` and
  its figure presets);
* every relative link and intra-repo anchor in the markdown documentation
  (README, docs/, DESIGN.md, the top-level project files) resolves --
  documentation that points at moved files fails CI instead of readers.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose links and anchors must resolve.
DOC_FILES = [
    REPO / "README.md",
    REPO / "DESIGN.md",
    REPO / "docs" / "user-guide.md",
    REPO / "docs" / "maintainer-guide.md",
    REPO / "docs" / "observability.md",
    REPO / "docs" / "robustness.md",
    REPO / "docs" / "service.md",
]

DOCTEST_MODULES = [
    "repro.experiments",
    "repro.experiments.faults",
    "repro.experiments.scheduler",
    "repro.pipeline.sampling",
    "repro.paper",
    "repro.paper.figures",
    "repro.paper.store",
    "repro.service",
    "repro.telemetry",
]

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_IMAGE = re.compile(r"!\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (enough for the headings we write)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = _CODE_FENCE.sub("", path.read_text())
    return {github_anchor(match) for match in _HEADING.findall(text)}


@pytest.mark.parametrize("name", DOCTEST_MODULES)
def test_public_api_doctests(name):
    module = __import__(name, fromlist=["_"])
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{name}: {result.failed} doctest failure(s)"
    # The docstring pass promises a *worked example*, not just prose.
    if name in ("repro.experiments", "repro.pipeline.sampling", "repro.paper"):
        assert result.attempted > 0, f"{name} has no doctest examples"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_docs_exist(doc):
    assert doc.exists(), f"documentation file {doc} is missing"


@pytest.mark.parametrize("doc", [d for d in DOC_FILES if d.exists()],
                         ids=lambda p: p.name)
def test_markdown_links_resolve(doc):
    text = _CODE_FENCE.sub("", doc.read_text())
    problems = []
    for target in _LINK.findall(text) + _IMAGE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external; not checked offline
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{target}: file {path_part} not found")
                continue
        else:
            resolved = doc
        if anchor:
            if resolved.suffix != ".md":
                continue
            if anchor not in anchors_of(resolved):
                problems.append(f"{target}: no heading for #{anchor} "
                                f"in {resolved.name}")
    assert not problems, "\n".join(problems)


def test_readme_is_a_quickstart_that_links_the_guides():
    readme = (REPO / "README.md").read_text()
    assert "docs/user-guide.md" in readme
    assert "docs/maintainer-guide.md" in readme
    # The long-form content lives in docs/ now; README stays quickstart-sized.
    assert len(readme.splitlines()) < 80


def test_user_guide_covers_the_whole_pipeline():
    guide = (REPO / "docs" / "user-guide.md").read_text()
    for command in ("repro run", "repro sweep", "repro paper", "repro bench",
                    "repro trace", "--sample-period", "--resume", "--smoke"):
        assert command in guide, f"user guide never mentions `{command}`"


def test_observability_guide_covers_the_telemetry_surface():
    guide = (REPO / "docs" / "observability.md").read_text()
    for topic in ("repro trace", "Perfetto", "Kanata", "MetricsRegistry",
                  "--log", "RunLogger", "zero-overhead"):
        assert topic in guide, f"observability guide never mentions {topic}"


def test_robustness_guide_covers_the_failure_model():
    guide = (REPO / "docs" / "robustness.md").read_text()
    for topic in ("RetryPolicy", "quarantine", "lease", "torn",
                  "repro store", "--inject-faults", "byte-identical"):
        assert topic in guide, f"robustness guide never mentions {topic}"


def test_service_guide_covers_the_api():
    guide = (REPO / "docs" / "service.md").read_text()
    for topic in ("repro serve", "POST /sweeps", "GET /results",
                  "DELETE /sweeps/{id}", "X-Client-Id", "quota",
                  "text/event-stream", "byte-identical",
                  "exactly once", "429", "503"):
        assert topic in guide, f"service guide never mentions {topic}"


def test_maintainer_guide_maps_the_modules():
    guide = (REPO / "docs" / "maintainer-guide.md").read_text()
    for module in ("repro.paper", "repro.experiments", "repro.pipeline",
                   "repro.service", "DESIGN.md"):
        assert module in guide, f"maintainer guide never mentions {module}"
