"""Unit tests for the memory hierarchy, with hand-worked expected values.

Geometry used throughout the cache tests: ``size=256B, ways=2, line=64B``
gives 2 sets; ``line = addr // 64``, ``set = line % 2``, ``tag = line // 2``,
so addresses 0, 128, 256, 384, 512 all map to set 0 with tags 0..4 and
address 64 maps to set 1.

Latency composition (Table 1 defaults): an L1D hit costs 4 cycles; an L1D
miss hitting in the L2 costs 4 + 12; an L2 miss adds the DRAM latency --
75 cycles for a row-buffer hit, 75 + 55 for a row miss, plus queueing when
the bank is busy, clamped at 185.
"""

from __future__ import annotations

import pytest

from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.memory.dram import DramConfig, DramModel
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.prefetcher import StridePrefetcher


def _tiny_cache() -> SetAssociativeCache:
    return SetAssociativeCache(CacheConfig(
        name="T", size_bytes=256, ways=2, line_bytes=64, hit_latency=4, mshrs=4))


# ---------------------------------------------------------------------------
# SetAssociativeCache
# ---------------------------------------------------------------------------


def test_cache_geometry():
    config = CacheConfig(name="T", size_bytes=256, ways=2, line_bytes=64)
    assert config.num_sets == 2
    cache = SetAssociativeCache(config)
    assert cache.line_address(0) == 0
    assert cache.line_address(63) == 0
    assert cache.line_address(64) == 64
    assert cache.line_address(130) == 128


def test_cache_geometry_validation():
    with pytest.raises(ValueError):
        CacheConfig(name="bad", size_bytes=100, ways=3, line_bytes=64)
    with pytest.raises(ValueError):
        CacheConfig(name="bad", size_bytes=0, ways=1, line_bytes=64)


def test_cache_hit_miss_and_lru_eviction():
    cache = _tiny_cache()
    assert not cache.lookup(0)          # cold miss
    cache.fill(0)
    assert not cache.lookup(128)        # second tag of set 0
    cache.fill(128)
    assert cache.lookup(0)              # hit refreshes 0 -> LRU order [128, 0]
    cache.fill(256)                     # set 0 full: evicts LRU = 128
    assert cache.probe(0)
    assert not cache.probe(128)
    assert cache.probe(256)
    assert cache.evictions == 1
    assert cache.writebacks == 0        # nothing was dirty
    assert (cache.hits, cache.misses) == (1, 2)


def test_cache_writeback_accounting():
    cache = _tiny_cache()
    cache.fill(0, is_write=True)        # dirty line
    cache.fill(128)                     # clean line; set 0 now [0(dirty), 128]
    cache.fill(256)                     # evicts 0 -> dirty writeback
    assert cache.evictions == 1
    assert cache.writebacks == 1
    # A write *hit* also marks the line dirty.
    assert cache.lookup(128, is_write=True)
    cache.fill(384)                     # evicts 256 (clean): no writeback
    assert cache.writebacks == 1
    cache.fill(512)                     # evicts 128 (dirtied by the write hit)
    assert cache.writebacks == 2


def test_cache_probe_touches_nothing():
    cache = _tiny_cache()
    cache.fill(0)
    hits, misses = cache.hits, cache.misses
    assert cache.probe(0)
    assert not cache.probe(64)
    assert (cache.hits, cache.misses) == (hits, misses)
    # probe must not refresh LRU: 0 stays LRU and is evicted next.
    cache.fill(128)
    cache.probe(0)
    cache.fill(256)
    assert not cache.probe(0)


def test_cache_snapshot_roundtrip_preserves_lru_and_dirty():
    cache = _tiny_cache()
    cache.fill(0, is_write=True)
    cache.fill(128)
    cache.lookup(0)                     # LRU order [128, 0]
    image = cache.to_snapshot()
    other = _tiny_cache()
    other.restore_snapshot(image)
    other.fill(256)                     # must evict 128, not 0
    assert other.probe(0) and not other.probe(128)
    other.fill(384)                     # evicts 0 -> dirty writeback
    assert other.writebacks == 1


# ---------------------------------------------------------------------------
# DramModel
# ---------------------------------------------------------------------------


def test_dram_row_miss_then_hit():
    dram = DramModel()
    assert dram.access(0, now=0) == 130           # open the row: 75 + 55
    assert dram.access(0, now=1000) == 75         # row-buffer hit, bank idle
    assert dram.row_hits == 1
    assert dram.row_conflicts == 0


def test_dram_bank_queueing():
    dram = DramModel()
    dram.access(0, now=0)                         # bank 0 busy until cycle 24
    # Row hit (75) plus waiting out the busy bank (24 - 0).
    assert dram.access(0, now=0) == 99


def test_dram_row_conflict_and_clamp():
    dram = DramModel()
    dram.access(0, now=0)
    # Same bank (bank = row % 16), different row: conflict, plus queueing,
    # 75 + 55 + 24 = 154 (below the 185 clamp).
    conflict_address = 8192 * 16
    assert dram.access(conflict_address, now=0) == 154
    assert dram.row_conflicts == 1
    # A latency that would exceed the part's max is clamped.
    slow = DramModel(DramConfig(min_latency=150, row_miss_penalty=55, max_latency=185))
    assert slow.access(0, now=0) == 185


def test_dram_warm_updates_rows_without_stats():
    dram = DramModel()
    dram.warm(0)
    assert dram.accesses == 0
    assert dram.access(0, now=0) == 75            # row already open, no timing paid


# ---------------------------------------------------------------------------
# StridePrefetcher
# ---------------------------------------------------------------------------


def test_prefetcher_confirms_stride_twice_then_fires():
    prefetcher = StridePrefetcher(degree=8, distance=1, min_confidence=2)
    pc = 0x400
    assert prefetcher.train(pc, 0) == []          # allocate entry
    assert prefetcher.train(pc, 64) == []         # learn stride 64
    assert prefetcher.train(pc, 128) == []        # first confirmation
    prefetches = prefetcher.train(pc, 192)        # second confirmation: fire
    assert prefetches == [192 + 64 * step for step in range(1, 9)]
    assert prefetcher.prefetches_issued == 8


def test_prefetcher_stride_change_resets_confidence():
    prefetcher = StridePrefetcher(degree=8, distance=1, min_confidence=2)
    pc = 0x400
    for address in (0, 64, 128, 192):
        prefetcher.train(pc, address)
    assert prefetcher.train(pc, 200) == []        # stride broke: retrain
    assert prefetcher.train(pc, 208) == []        # new stride 8, one confirmation
    assert prefetcher.train(pc, 216) == [216 + 8 * step for step in range(1, 9)]


# ---------------------------------------------------------------------------
# MemoryHierarchy
# ---------------------------------------------------------------------------


def test_hierarchy_latency_composition():
    hierarchy = MemoryHierarchy()
    # Cold: L1D miss + L2 miss + DRAM row miss = 4 + 12 + 130.
    assert hierarchy.access_data(0, False, pc=0x100, now=0) == 146
    # Same line again: L1D hit.
    assert hierarchy.access_data(8, False, pc=0x100, now=1000) == 4
    # L2 hit path: drop the line from the L1D only.
    hierarchy.l1d.invalidate_all()
    assert hierarchy.access_data(0, False, pc=0x100, now=2000) == 16


def test_hierarchy_instruction_side():
    hierarchy = MemoryHierarchy()
    cold = hierarchy.access_instruction(0x1000, now=0)
    assert cold == 1 + 12 + 130                   # L1I + L2 + DRAM row miss
    assert hierarchy.access_instruction(0x1000, now=1000) == 1


def test_hierarchy_prefetcher_fills_l2():
    hierarchy = MemoryHierarchy()
    pc = 0x500
    # Four strided L1D misses from one pc: 0, 64, 128, 192 (line stride 64).
    for address in (0, 64, 128, 192):
        hierarchy.access_data(address, False, pc=pc, now=10_000)
    # Degree-8, distance-1 prefetches 256..704 landed in the L2 (not the L1D).
    for line in range(256, 704 + 1, 64):
        assert hierarchy.l2.probe(line), f"line {line} not prefetched"
        assert not hierarchy.l1d.probe(line)
    assert hierarchy.l2.prefetch_fills == 8
    # The next demand access hits in the L2 thanks to the prefetch.
    assert hierarchy.access_data(256, False, pc=pc, now=20_000) == 16


def test_hierarchy_mshr_pressure():
    config = HierarchyConfig(l1d=CacheConfig(
        name="L1D", size_bytes=32 * 1024, ways=8, hit_latency=4, mshrs=1))
    hierarchy = MemoryHierarchy(config)
    first = hierarchy.access_data(0, False, pc=0x100, now=0)
    # The first miss is still outstanding at cycle 1: the single MSHR is
    # occupied, so the second miss pays the coarse 4-cycle stall on top.
    second = hierarchy.access_data(1 << 20, False, pc=0x104, now=1)
    assert hierarchy.mshr_full_events == 1
    assert second >= first - 55 + 4  # same path modulo row behaviour, plus stall


def test_hierarchy_warm_data_trains_state_without_latency():
    hierarchy = MemoryHierarchy()
    pc = 0x600
    for address in (0, 64, 128, 192):
        hierarchy.warm_data(address, False, pc)
    # Warming installed the lines and ran the prefetcher exactly like the
    # timed path would have...
    assert hierarchy.l1d.probe(0) and hierarchy.l2.probe(256)
    # ...without touching demand accounting or MSHR occupancy.
    assert hierarchy.demand_accesses == 0
    assert hierarchy._outstanding_misses == []
    # A subsequent timed access is a plain L1D hit.
    assert hierarchy.access_data(0, False, pc=pc, now=0) == 4


def test_hierarchy_snapshot_rebases_timed_state():
    hierarchy = MemoryHierarchy()
    hierarchy.access_data(0, False, pc=0x100, now=100)    # miss outstanding
    image = hierarchy.to_snapshot(now=100)
    restored = MemoryHierarchy()
    restored.restore_snapshot(image, now=0)
    # The outstanding miss completes the same number of cycles *after* the
    # restore point as it would have after the snapshot point.
    assert restored._outstanding_misses == [
        t - 100 for t in hierarchy._outstanding_misses]
    assert restored.l1d.probe(0)
    assert restored.access_data(0, False, pc=0x100, now=0) == 4
