"""CLI subcommand tests (in-process, via main(argv))."""

import json

from repro.experiments.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "spill_reload" in out
    assert "refcount_checkpoint" in out


def test_run_json(capsys):
    assert main(["run", "move_chain", "--max-ops", "500", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["workload"] == "move_chain"
    assert data["instructions"] == 500


def test_sweep_and_report(tmp_path, capsys):
    code = main([
        "sweep", "--schemes", "isrb", "--workloads", "move_chain",
        "--max-ops", "500", "--jobs", "1", "--quiet",
        "--cache-dir", str(tmp_path / "cache"),
        "--out-dir", str(tmp_path / "out"),
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "**geomean**" in captured.out
    assert "1 generated" in captured.err

    artifact = tmp_path / "out" / "sweep.json"
    assert artifact.exists()
    assert main(["report", str(artifact), "--format", "csv"]) == 0
    assert capsys.readouterr().out.startswith("workload,")


def test_version_flag(capsys):
    import repro

    try:
        main(["--version"])
    except SystemExit as exc:
        assert exc.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_sweep_resume_skips_finished_cells(tmp_path, capsys):
    argv = ["sweep", "--schemes", "isrb", "--workloads", "move_chain",
            "--max-ops", "500", "--quiet", "--resume",
            "--cache-dir", "", "--out-dir", str(tmp_path / "out")]
    assert main(argv) == 0
    err = capsys.readouterr().err
    assert "2 cell(s) appended, 0 resumed" in err
    assert (tmp_path / "out" / "results_store.jsonl").exists()
    assert main(argv) == 0
    assert "0 cell(s) appended, 2 resumed" in capsys.readouterr().err


def test_paper_smoke_single_figure(tmp_path, capsys):
    out = tmp_path / "paper"
    assert main(["paper", "--smoke", "--figure", "9", "--quiet",
                 "--out-dir", str(out)]) == 0
    captured = capsys.readouterr()
    assert "cells" in captured.out
    assert (out / "REPORT.md").exists()
    assert (out / "figure9.svg").exists()
    assert (out / "figures.json").exists()
    assert (out / "store" / "results.jsonl").exists()


def test_paper_rejects_unknown_figure_value(tmp_path, capsys):
    import pytest

    with pytest.raises(SystemExit):
        main(["paper", "--figure", "12", "--out-dir", str(tmp_path)])
    assert "--figure" in capsys.readouterr().err


def test_sweep_rejects_unknown_scheme(tmp_path, capsys):
    code = main(["sweep", "--schemes", "bogus",
                 "--out-dir", str(tmp_path / "out"),
                 "--cache-dir", str(tmp_path / "cache")])
    assert code == 2
    assert "unknown scheme" in capsys.readouterr().err


def test_sweep_inject_faults_matches_clean_artifacts(tmp_path, capsys):
    base = ["sweep", "--schemes", "isrb", "--workloads", "move_chain",
            "--max-ops", "500", "--quiet", "--cache-dir", ""]
    assert main(base + ["--out-dir", str(tmp_path / "clean")]) == 0
    capsys.readouterr()
    assert main(base + ["--out-dir", str(tmp_path / "chaos"), "--resume",
                        "--inject-faults", "3", "--fault-rate", "1.0",
                        "--fault-kinds", "raise,torn_write"]) == 0
    err = capsys.readouterr().err
    assert "reliability:" in err
    # The chaos artifacts are byte-identical to the clean ones.
    for name in ("sweep.md", "sweep.json", "sweep.csv"):
        assert ((tmp_path / "chaos" / name).read_bytes()
                == (tmp_path / "clean" / name).read_bytes())


def test_sweep_rejects_unknown_fault_kind(tmp_path, capsys):
    code = main(["sweep", "--schemes", "isrb", "--workloads", "move_chain",
                 "--max-ops", "500", "--quiet", "--cache-dir", "",
                 "--out-dir", str(tmp_path / "out"),
                 "--inject-faults", "1", "--fault-kinds", "explode"])
    assert code == 2
    assert "unknown fault kind" in capsys.readouterr().err


def test_store_verify_stats_compact(tmp_path, capsys):
    out = tmp_path / "out"
    assert main(["sweep", "--schemes", "isrb", "--workloads", "move_chain",
                 "--max-ops", "500", "--quiet", "--resume", "--cache-dir", "",
                 "--out-dir", str(out)]) == 0
    capsys.readouterr()
    store_file = out / "results_store.jsonl"

    assert main(["store", "verify", str(store_file)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["records"] == 2 and report["corrupt_lines"] == 0

    assert main(["store", "stats", str(store_file)]) == 0
    text = capsys.readouterr().out
    assert "2 record(s)" in text and "torn tail: no" in text

    assert main(["store", "compact", str(store_file)]) == 0
    outcome = json.loads(capsys.readouterr().out)
    assert outcome["records_kept"] == 2

    # verify exits non-zero on damage (a torn tail), compact repairs it.
    with store_file.open("a") as handle:
        handle.write('{"torn')
    assert main(["store", "verify", str(store_file)]) == 1
    capsys.readouterr()
    assert main(["store", "compact", str(store_file)]) == 0
    capsys.readouterr()
    assert main(["store", "verify", str(store_file)]) == 0


def test_store_verify_missing_file(tmp_path, capsys):
    assert main(["store", "verify", str(tmp_path / "absent.jsonl")]) == 2
    assert "no results store" in capsys.readouterr().err
