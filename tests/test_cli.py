"""CLI subcommand tests (in-process, via main(argv))."""

import json

from repro.experiments.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "spill_reload" in out
    assert "refcount_checkpoint" in out


def test_run_json(capsys):
    assert main(["run", "move_chain", "--max-ops", "500", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["workload"] == "move_chain"
    assert data["instructions"] == 500


def test_sweep_and_report(tmp_path, capsys):
    code = main([
        "sweep", "--schemes", "isrb", "--workloads", "move_chain",
        "--max-ops", "500", "--jobs", "1", "--quiet",
        "--cache-dir", str(tmp_path / "cache"),
        "--out-dir", str(tmp_path / "out"),
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "**geomean**" in captured.out
    assert "1 generated" in captured.err

    artifact = tmp_path / "out" / "sweep.json"
    assert artifact.exists()
    assert main(["report", str(artifact), "--format", "csv"]) == 0
    assert capsys.readouterr().out.startswith("workload,")


def test_sweep_rejects_unknown_scheme(tmp_path, capsys):
    code = main(["sweep", "--schemes", "bogus",
                 "--out-dir", str(tmp_path / "out"),
                 "--cache-dir", str(tmp_path / "cache")])
    assert code == 2
    assert "unknown scheme" in capsys.readouterr().err
