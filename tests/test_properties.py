"""Property/invariant tests driven by seeded random program generators.

Hand-written workloads exercise the behaviours the paper measures; the
random programs here exercise the *corners* -- arbitrary interleavings of
eliminable moves, aliasing loads/stores, data-dependent branches and calls
-- while a checked core asserts the structural invariants every cycle:

* sharing-tracker reference counts never go negative, never exceed the
  configured counter width, and (matrix/ISRB family) collapse to the
  committed image after every squash;
* the free lists never double-allocate and return to balance at drain
  (every physical register is free, architecturally mapped, or explicitly
  tracked as reclaim-deferred -- no leaks);
* ROB / issue-queue / LSQ occupancy never exceeds capacity.

Everything is seeded ``random.Random`` -- a failure reproduces exactly.
"""

from __future__ import annotations

import pytest

from repro.core.isrb import InflightSharedRegisterBuffer
from repro.isa.registers import NUM_INT_REGS
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core

# The random-program generator was promoted from this file into a
# registered workload family (``fuzz_*`` / ``fuzz:<profile>[:<seed>]``); the
# property layer drives the same generator everything else now runs, so the
# invariants below are checked against exactly the programs the sweep
# harness, paper pipeline and differential layer see.
from repro.workloads.fuzz import random_image

MAX_OPS = 1_500


# ---------------------------------------------------------------------------
# The checked core
# ---------------------------------------------------------------------------


class InvariantViolation(AssertionError):
    pass


class CheckedCore(Core):
    """A :class:`Core` that asserts structural invariants while running."""

    def run(self, trace, max_cycles=None):
        result = super().run(trace, max_cycles=max_cycles)
        self._check_drain_balance()
        return result

    # -- per-cycle hooks ----------------------------------------------------------

    def _do_commit(self):
        super()._do_commit()
        self._check_occupancy()
        self._check_tracker_counts()

    def _flush_at(self, entry):
        super()._flush_at(entry)
        self._check_tracker_committed_image()

    # -- invariants ---------------------------------------------------------------

    def _check_occupancy(self):
        config = self.config
        if self.rob.occupancy() > config.rob_entries:
            raise InvariantViolation("ROB occupancy exceeds capacity")
        if len(self.iq) > config.iq_entries:
            raise InvariantViolation("issue queue occupancy exceeds capacity")
        if self.lsq.lq_occupancy() > config.lq_entries:
            raise InvariantViolation("load queue occupancy exceeds capacity")
        if self.lsq.sq_occupancy() > config.sq_entries:
            raise InvariantViolation("store queue occupancy exceeds capacity")

    def _isrb_entries(self):
        tracker = self.tracker
        if isinstance(tracker, InflightSharedRegisterBuffer):
            return tracker._entries
        return None

    def _check_tracker_counts(self):
        entries = self._isrb_entries()
        if entries is None:
            return
        limit = self.tracker._counter_limit()
        for preg, entry in entries.items():
            if entry.referenced < 0 or entry.committed < 0 \
                    or entry.referenced_committed < 0:
                raise InvariantViolation(
                    f"negative reference count for preg {preg}: {entry}")
            if entry.referenced < entry.referenced_committed:
                raise InvariantViolation(
                    f"speculative count below committed image for preg {preg}")
            if limit is not None and entry.referenced > limit:
                raise InvariantViolation(
                    f"counter width exceeded for preg {preg}: {entry.referenced}")

    def _check_tracker_committed_image(self):
        """Right after a squash the tracker must equal its committed image."""
        entries = self._isrb_entries()
        if entries is None:
            return
        for preg, entry in entries.items():
            if entry.referenced != entry.referenced_committed:
                raise InvariantViolation(
                    f"post-squash row for preg {preg} not collapsed to the "
                    f"committed image: {entry}")
            if entry.committed > entry.referenced:
                raise InvariantViolation(
                    f"post-squash row for preg {preg} should have been freed")

    def _check_drain_balance(self):
        """At drain: no leaked and no double-free physical registers."""
        mapped = set(self.commit_map.raw())
        spec_mapped = set(self.rename_map.raw())
        if mapped != spec_mapped:
            raise InvariantViolation(
                "speculative and committed rename maps disagree at drain")
        for free_list in (self.int_free, self.fp_free):
            free = free_list.speculative_free_set()
            committed_free = free_list.committed_free_set()
            if free != committed_free:
                raise InvariantViolation(
                    f"{free_list.reg_class.value} free list out of balance at "
                    f"drain: {len(free)} speculative vs {len(committed_free)} "
                    "committed")
            if free & mapped:
                raise InvariantViolation(
                    f"{free_list.reg_class.value} free list contains "
                    f"architecturally mapped registers: {sorted(free & mapped)}")
            first = free_list.first_preg
            for preg in range(first, first + free_list.count):
                if preg in free or preg in mapped:
                    continue
                if self.tracker.is_tracked(preg):
                    continue  # reclaim legitimately deferred by the tracker
                if any(entry.old_preg == preg
                       for entry in self.rob.retained()):
                    continue  # lazy reclaim: the release walk that would
                    # reclaim the overwritten mapping has not reached it yet
                raise InvariantViolation(
                    f"physical register {preg} leaked: neither free, mapped, "
                    "tracked, nor retained")


# ---------------------------------------------------------------------------
# The properties
# ---------------------------------------------------------------------------

SEEDS = (11, 23, 47, 101)

#: Tracker configurations chosen to stress different corners: a tiny ISRB
#: (capacity and counter saturation), the unlimited reference, walk-recovery
#: counters, and the matrix family whose rows must collapse after squashes.
SCHEME_CONFIGS = {
    "isrb_tiny": CoreConfig().with_tracker("isrb", entries=4, counter_bits=2)
                             .with_move_elimination().with_smb(),
    "unlimited": CoreConfig().with_tracker("unlimited", entries=None,
                                           counter_bits=None)
                             .with_move_elimination().with_smb(),
    "refcount": CoreConfig().with_tracker("refcount", entries=None,
                                          counter_bits=3)
                            .with_move_elimination().with_smb(),
    "matrix": CoreConfig().with_tracker("matrix", entries=None,
                                        counter_bits=None)
                          .with_move_elimination().with_smb(),
    "isrb_lazy": CoreConfig().with_tracker("isrb", entries=32, counter_bits=3)
                             .with_move_elimination()
                             .with_smb(bypass_from_committed=True),
}


def _run_checked(seed: int, config: CoreConfig):
    image = random_image(seed)
    trace = image.execute(max_ops=MAX_OPS)
    return CheckedCore(config).run(trace)


@pytest.mark.parametrize("scheme", sorted(SCHEME_CONFIGS))
@pytest.mark.parametrize("seed", SEEDS)
def test_random_programs_hold_invariants(seed, scheme):
    """Random programs commit fully under every scheme with invariants intact."""
    result = _run_checked(seed, SCHEME_CONFIGS[scheme])
    assert result.instructions == MAX_OPS


def test_random_programs_actually_squash():
    """The generator produces traps, so the squash invariants really ran."""
    flushes = 0.0
    for seed in SEEDS:
        result = _run_checked(seed, SCHEME_CONFIGS["isrb_tiny"])
        flushes += result.stat("memory_order_violations")
        flushes += result.stat("bypass_validation_flushes")
    assert flushes > 0, (
        "no commit-stage squash in any seed: the post-squash tracker "
        "invariants were never exercised; retune the generator")


def test_random_programs_exercise_sharing():
    """Move elimination and tracker rejections both occur (tiny ISRB)."""
    eliminated = rejected = 0.0
    for seed in SEEDS:
        result = _run_checked(seed, SCHEME_CONFIGS["isrb_tiny"])
        eliminated += result.stat("moves_eliminated",
                                  result.stat("committed_eliminated_moves"))
        rejected += result.stat("tracker_shares_rejected_full")
        rejected += result.stat("tracker_shares_rejected_saturated")
    assert eliminated > 0, "generator produced no eliminated moves"
    assert rejected > 0, "tiny ISRB was never capacity/width limited"


def test_zero_latency_config_still_drains():
    """The writeback wheel must deliver zero-latency completions.

    The former writeback heap popped everything with ``complete_cycle <=
    cycle``, so a (legal) zero-latency op completed on the *next* cycle's
    writeback; the bucketed wheel must reproduce that instead of parking
    the op in a bucket that is never drained (a pipeline deadlock).
    """
    from repro.pipeline.core import simulate

    config = CoreConfig().replace(branch_latency=0, store_latency=0)
    result = simulate("move_chain", config, max_ops=500, seed=1)
    assert result.instructions == 500


def _split_trace(trace, split):
    """Split a trace into two stand-alone traces (window-local sequence numbers)."""
    import dataclasses

    from repro.isa.executor import Trace

    first = Trace(name=f"{trace.name}.a", ops=list(trace.ops[:split]),
                  program=trace.program)
    second = Trace(
        name=f"{trace.name}.b",
        ops=[dataclasses.replace(op, seq=index)
             for index, op in enumerate(trace.ops[split:])],
        program=trace.program,
    )
    return first, second


@pytest.mark.parametrize("scheme", sorted(SCHEME_CONFIGS))
def test_snapshot_restore_resume_matches_uninterrupted(scheme):
    """Snapshot -> restore -> resume is indistinguishable from continuing.

    For every tracker scheme: run the first half of a random trace, take a
    micro-architectural snapshot, then resume the second half twice -- once
    in the *same* core object (which carries whatever state a buggy restore
    would fail to overwrite) and once in a factory-fresh core.  Both must
    commit identically (same cycles, same statistics) and end in states
    with identical snapshot digests; any core state missed by the snapshot
    API diverges the two runs and fails the digest comparison.  The
    architectural half of the property (functional resume == uninterrupted
    execution, pinned by the golden SHA-256 digests) lives in
    ``test_differential.py``.
    """
    from repro.pipeline.core import Core

    config = SCHEME_CONFIGS[scheme]
    image = random_image(23)
    trace = image.execute(max_ops=MAX_OPS)
    first, second = _split_trace(trace, MAX_OPS // 2)

    veteran = Core(config)
    first_result = veteran.run(first)
    assert first_result.instructions == len(first)
    snapshot = veteran.snapshot()

    fresh = Core(config)
    resumed_fresh = fresh.run(second, resume=snapshot)
    resumed_veteran = veteran.run(second, resume=snapshot)

    assert resumed_fresh.cycles == resumed_veteran.cycles
    assert resumed_fresh.instructions == len(second)
    assert resumed_veteran.instructions == len(second)
    assert resumed_fresh.stats == resumed_veteran.stats
    assert fresh.snapshot().digest() == veteran.snapshot().digest()


@pytest.mark.parametrize("scheme", sorted(SCHEME_CONFIGS))
def test_snapshot_commits_full_trace_across_many_splits(scheme):
    """Chained windows commit every micro-op under every tracker scheme.

    This is the shape the sampled driver uses (run window, snapshot, run
    the next window from the snapshot); it must never leak or double-free
    physical registers -- with the lazy-reclaim configuration in the mix,
    the pre-snapshot release walk is what keeps the free lists balanced.
    """
    import dataclasses

    from repro.isa.executor import Trace
    from repro.pipeline.core import Core

    config = SCHEME_CONFIGS[scheme]
    trace = random_image(47).execute(max_ops=MAX_OPS)
    core = Core(config)
    snapshot = None
    committed = 0
    for start in range(0, MAX_OPS, 300):
        chunk = Trace(
            name=f"chunk@{start}",
            ops=[dataclasses.replace(op, seq=index)
                 for index, op in enumerate(trace.ops[start:start + 300])],
            program=trace.program,
        )
        result = core.run(chunk, resume=snapshot)
        snapshot = core.snapshot()
        committed += result.instructions
    assert committed == MAX_OPS


def test_free_list_rejects_double_free():
    """The double-allocation guard itself works (not just never fires)."""
    from repro.isa.registers import RegClass
    from repro.rename.maps import FreeList

    free_list = FreeList(RegClass.INT, 0, 48, NUM_INT_REGS)
    preg = free_list.allocate()
    free_list.on_commit_allocate(preg)
    free_list.release(preg)
    with pytest.raises(ValueError, match="freed twice"):
        free_list.release(preg)
