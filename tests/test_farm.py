"""Checkpoint-farm tests: shared-warmup plans, the plan cache, sweep wiring.

The farm's load-bearing contract is *exact equality*: executing a shared
:class:`~repro.pipeline.sampling.SamplePlan` under a scheme configuration
must produce the identical :class:`SimulationResult` that the scheme's own
independently warmed run produces.  Everything scheme-local (tracker,
rename state, TAGE, Store Sets, SMB) chains through the scheme's own
snapshots; only the functionally warmed structures -- which are a pure
function of the architectural instruction stream -- are shared.
"""

from __future__ import annotations

import pytest

from repro.experiments.cache import TraceCache, plan_cache_key
from repro.experiments.cli import main as cli_main
from repro.experiments.grid import SCHEME_PRESETS, SweepSpec
from repro.experiments.runner import run_sweep
from repro.pipeline.config import CoreConfig
from repro.pipeline.sampling import SampledSimulator, SamplingConfig
from repro.workloads import build_workload

MAX_OPS = 4_000
SAMPLING = SamplingConfig(period=1_000, window=300, warmup=200, cooldown=150)

#: Schemes exercised by the equality property: the paper's headline scheme,
#: a walk-recovery scheme, the MIT and the no-sharing baseline -- together
#: they cover every recovery style the detailed execution distinguishes.
FARM_SCHEMES = ("baseline", "isrb", "refcount", "mit")


def _config_for(scheme: str) -> CoreConfig:
    if scheme == "baseline":
        return CoreConfig()
    preset = SCHEME_PRESETS[scheme]
    return (CoreConfig()
            .with_tracker(scheme=preset["scheme"], entries=preset["entries"],
                          counter_bits=preset["counter_bits"])
            .with_move_elimination()
            .with_smb())


@pytest.fixture(scope="module")
def shared_plan():
    image = build_workload("spill_reload", seed=1)
    return SampledSimulator(CoreConfig(), SAMPLING).plan(
        image, "spill_reload", MAX_OPS, workload="spill_reload")


# -- the equality property -------------------------------------------------------------


@pytest.mark.parametrize("scheme", FARM_SCHEMES)
def test_farm_result_equals_independent_warming(shared_plan, scheme):
    """execute_plan(shared plan) == run_workload, field for field."""
    config = _config_for(scheme)
    farmed = SampledSimulator(config, SAMPLING).execute_plan(shared_plan)
    independent = SampledSimulator(config, SAMPLING).run_workload(
        "spill_reload", max_ops=MAX_OPS, seed=1)
    assert farmed.to_dict() == independent.to_dict()


def test_plan_is_reusable_and_never_mutated(shared_plan):
    """Executing a plan twice (different schemes between) changes nothing."""
    first = SampledSimulator(_config_for("isrb"), SAMPLING).execute_plan(shared_plan)
    SampledSimulator(_config_for("mit"), SAMPLING).execute_plan(shared_plan)
    again = SampledSimulator(_config_for("isrb"), SAMPLING).execute_plan(shared_plan)
    assert first.to_dict() == again.to_dict()


def test_plan_is_deterministic():
    image = build_workload("move_chain", seed=1)
    simulator = SampledSimulator(CoreConfig(), SAMPLING)
    first = simulator.plan(image, "move_chain", 2_000)
    second = simulator.plan(build_workload("move_chain", seed=1),
                            "move_chain", 2_000)
    assert first == second


def test_execute_plan_rejects_foreign_geometry(shared_plan):
    other = SampledSimulator(_config_for("isrb"),
                             SamplingConfig(period=2_000, window=300, warmup=200))
    with pytest.raises(ValueError, match="sampling"):
        other.execute_plan(shared_plan)


def test_execute_plan_rejects_foreign_machine(shared_plan):
    import dataclasses

    from repro.memory.hierarchy import HierarchyConfig

    small_btb = _config_for("isrb").replace(btb_entries=512)
    with pytest.raises(ValueError, match="warm structure"):
        SampledSimulator(small_btb, SAMPLING).execute_plan(shared_plan)
    assert small_btb.warm_signature() != CoreConfig().warm_signature()
    # Sanity: the signature really keys on the warm structures only.
    assert _config_for("mit").warm_signature() == CoreConfig().warm_signature()
    resized = dataclasses.replace(
        HierarchyConfig())  # identical hierarchy -> identical signature
    assert CoreConfig().replace(memory=resized).warm_signature() \
        == CoreConfig().warm_signature()


# -- the plan cache ---------------------------------------------------------------------


def test_plan_cache_roundtrip(tmp_path, shared_plan):
    cache = TraceCache(tmp_path)
    simulator = SampledSimulator(CoreConfig(), SAMPLING)
    assert cache.get_plan("spill_reload", MAX_OPS, 1, simulator) is None
    cache.put_plan("spill_reload", MAX_OPS, 1, simulator, shared_plan)
    loaded = cache.get_plan("spill_reload", MAX_OPS, 1, simulator)
    assert loaded == shared_plan
    # A simulator with different geometry never sees the foreign plan.
    other = SampledSimulator(CoreConfig(),
                             SamplingConfig(period=2_000, window=300, warmup=200))
    assert other.sampling_fingerprint() != simulator.sampling_fingerprint()
    assert cache.get_plan("spill_reload", MAX_OPS, 1, other) is None


def test_warm_plans_counts_generated_and_reused(tmp_path):
    cache = TraceCache(tmp_path)
    simulator = SampledSimulator(CoreConfig(), SAMPLING)
    keys = [("move_chain", 2_000, 1), ("spill_reload", 2_000, 1),
            ("move_chain", 2_000, 1)]
    assert cache.warm_plans(keys, simulator) == (2, 0)
    assert cache.warm_plans(keys, simulator) == (0, 2)


def test_plan_cache_key_separates_machines():
    simulator = SampledSimulator(CoreConfig(), SAMPLING)
    resized = SampledSimulator(CoreConfig().replace(btb_entries=512), SAMPLING)
    assert plan_cache_key("w", 100, 1, simulator) \
        != plan_cache_key("w", 100, 1, resized)


def test_plan_cache_key_is_stable_for_fixed_geometry():
    """Pre-error-budget plan-cache keys must not change (cache reuse), and
    only an error-budget simulator grows the adaptive suffix."""
    simulator = SampledSimulator(CoreConfig(), SAMPLING)
    key = plan_cache_key("w", 100, 1, simulator)
    assert "__t" not in key
    budget = SampledSimulator(CoreConfig(), SamplingConfig(
        period=1_000, window=300, warmup=200, cooldown=150, tolerance=0.05))
    adaptive_key = plan_cache_key("w", 100, 1, budget)
    assert "__t0.05-5-64-" in adaptive_key
    assert adaptive_key != key


def test_plan_cache_key_separates_probe_machines():
    """Adaptive placement depends on the probed machine (PRF sizing is not
    in the warm signature), so differently sized probe machines must never
    share an adaptive plan."""
    budget = SamplingConfig(period=1_000, window=300, warmup=200,
                            cooldown=150, tolerance=0.05)
    default = SampledSimulator(CoreConfig(), budget)
    small_prf = SampledSimulator(CoreConfig().replace(num_int_pregs=96), budget)
    assert default.config.warm_signature() == small_prf.config.warm_signature()
    assert plan_cache_key("w", 100, 1, default) \
        != plan_cache_key("w", 100, 1, small_prf)


# -- sweep wiring -------------------------------------------------------------------------


@pytest.fixture(scope="module")
def farm_spec() -> SweepSpec:
    return SweepSpec(
        schemes=("isrb", "refcount"),
        workloads=("spill_reload",),
        max_ops=3_000,
        seed=1,
        sample_period=1_000,
        sample_window=300,
        sample_warmup=200,
        sample_cooldown=150,
    )


def test_farm_sweep_equals_unfarmed_sweep(farm_spec):
    """The whole-artifact property: farm on == farm off, byte for byte."""
    farmed = run_sweep(farm_spec, workers=1, cache_dir=None, farm=True)
    unfarmed = run_sweep(farm_spec, workers=1, cache_dir=None, farm=False)
    assert farmed.to_json() == unfarmed.to_json()


def test_farm_sweep_equals_unfarmed_across_pool_sizes(farm_spec, tmp_path):
    farmed = run_sweep(farm_spec, workers=3, cache_dir=str(tmp_path / "farm"))
    unfarmed = run_sweep(farm_spec, workers=1, cache_dir=None, farm=False)
    assert farmed.to_markdown() == unfarmed.to_markdown()
    assert [r.to_dict() for r in farmed.results] \
        == [r.to_dict() for r in unfarmed.results]


@pytest.fixture(scope="module")
def budget_spec() -> SweepSpec:
    return SweepSpec(
        schemes=("isrb", "refcount"),
        workloads=("long_phase_mix",),
        max_ops=30_000,
        seed=1,
        sample_window=300,
        sample_warmup=200,
        sample_cooldown=150,
        sample_tolerance=0.05,
        sample_min_windows=2,
        sample_max_windows=8,
    )


def test_error_budget_farm_sweep_equals_unfarmed_sweep(budget_spec):
    """Adaptive planning probes a scheme-stripped machine, so the farm and
    the independently warmed sweep freeze the same plan and the whole
    artifact stays byte-identical."""
    farmed = run_sweep(budget_spec, workers=1, cache_dir=None, farm=True)
    unfarmed = run_sweep(budget_spec, workers=1, cache_dir=None, farm=False)
    assert farmed.to_json() == unfarmed.to_json()
    windows = [result.stat("sampling_windows") for result in farmed.results]
    assert windows and all(count >= 2 for count in windows)
    assert len(set(windows)) == 1    # matched offsets: same plan every scheme


def test_error_budget_farm_sweep_across_pool_sizes(budget_spec, tmp_path):
    pooled = run_sweep(budget_spec, workers=3, cache_dir=str(tmp_path / "c"))
    serial = run_sweep(budget_spec, workers=1, cache_dir=None, farm=False)
    assert pooled.to_markdown() == serial.to_markdown()
    assert [r.to_dict() for r in pooled.results] \
        == [r.to_dict() for r in serial.results]


def test_pooled_farm_sweep_without_cache_uses_ephemeral_plans(farm_spec):
    """workers > 1 and no cache dir: plans still shared (ephemerally)."""
    pooled = run_sweep(farm_spec, workers=2, cache_dir=None)
    serial = run_sweep(farm_spec, workers=1, cache_dir=None)
    assert pooled.to_json() == serial.to_json()
    assert pooled.cache_stats == {}


def test_sweep_warm_homogeneous(farm_spec):
    assert farm_spec.warm_homogeneous()


def test_failing_workload_fails_its_jobs_not_the_sweep(tmp_path):
    """Planning failure (budget below warmup) degrades to per-job errors."""
    spec = SweepSpec(
        schemes=("isrb",),
        workloads=("spill_reload",),
        max_ops=100,                 # smaller than the warmup: no window fits
        seed=1,
        sample_period=1_000,
        sample_window=300,
        sample_warmup=200,
    )
    report = run_sweep(spec, workers=1, cache_dir=str(tmp_path))
    assert len(report.failures) == 2  # baseline + variant, sweep still reports
    assert all("no room for a measured window" in failure["error"]
               for failure in report.failures)


def test_cli_sweep_no_farm(tmp_path, capsys):
    code = cli_main([
        "sweep", "--schemes", "isrb", "--workloads", "move_chain",
        "--max-ops", "3000", "--sample-period", "1000",
        "--sample-window", "300", "--warmup", "200", "--no-farm", "--quiet",
        "--cache-dir", "", "--out-dir", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "sweep.json").exists()


def test_cli_sweep_farm_reports_plan_cache(tmp_path, capsys):
    code = cli_main([
        "sweep", "--schemes", "isrb,refcount", "--workloads", "move_chain",
        "--max-ops", "3000", "--sample-period", "1000",
        "--sample-window", "300", "--warmup", "200", "--quiet",
        "--cache-dir", str(tmp_path / "cache"), "--out-dir", str(tmp_path)])
    assert code == 0
    err = capsys.readouterr().err
    assert "checkpoint farm: 1 shared warmup(s) planned" in err
