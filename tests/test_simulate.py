"""End-to-end smoke tests of the trace-driven core model."""

from repro import CoreConfig, simulate, simulate_trace
from repro.workloads import generate_trace


def test_simulate_smoke():
    result = simulate("spill_reload", CoreConfig(), max_ops=2_000)
    assert result.workload == "spill_reload"
    assert result.instructions == 2_000
    assert result.cycles > 0
    assert 0.1 < result.ipc < 8.0


def test_simulation_is_deterministic():
    first = simulate("move_chain", CoreConfig(), max_ops=1_500, seed=7)
    second = simulate("move_chain", CoreConfig(), max_ops=1_500, seed=7)
    assert first.cycles == second.cycles
    assert first.stats == second.stats


def test_sharing_optimisations_do_not_slow_down_the_spill_workload():
    base = simulate("spill_reload", CoreConfig(), max_ops=3_000)
    optimised = simulate(
        "spill_reload",
        CoreConfig().with_move_elimination().with_smb(),
        max_ops=3_000)
    speedup = optimised.speedup_over(base)
    assert speedup >= 1.0
    assert optimised.stat("committed_bypassed_loads") > 0


def test_simulate_trace_matches_simulate():
    trace = generate_trace("move_chain", max_ops=1_000, seed=1)
    via_trace = simulate_trace(trace, CoreConfig())
    via_name = simulate("move_chain", CoreConfig(), max_ops=1_000, seed=1)
    assert via_trace.cycles == via_name.cycles
