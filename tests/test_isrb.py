"""ISRB unit tests, including the Section 4.3.1 checkpoint/restore worked example."""

import pytest

from repro.core.isrb import InflightSharedRegisterBuffer, IsrbConfig
from repro.core.tracker import ReclaimDecision, TrackerConfig


def make_isrb(entries=32, counter_bits=3, checkpoints=8):
    return InflightSharedRegisterBuffer(TrackerConfig(
        scheme="isrb", entries=entries, counter_bits=counter_bits,
        checkpoints=checkpoints, num_phys_regs=512))


def test_section_4_3_1_worked_example():
    """The paper's Section 4.3.1 recovery example.

    A branch checkpoint is taken; *after* it, a speculative instruction
    shares physical register P (``referenced`` becomes 1).  The instruction
    overwriting P's mapping then commits: P cannot be freed because the
    speculative sharer still references it, so ``committed`` advances to 1
    and the register is kept alive.  When the branch turns out mispredicted
    the checkpoint is restored: ``referenced`` falls back to its
    checkpointed value 0, leaving ``committed`` (always architecturally
    correct) *greater* than ``referenced`` -- the tell-tale that the last
    committed overwrite would have freed P had the squashed sharer never
    existed.  The ISRB therefore releases P immediately during the
    single-cycle recovery.
    """
    isrb = make_isrb()
    P = 7

    checkpoint = isrb.checkpoint()

    # Wrong-path move elimination shares P.
    assert isrb.try_share(P, dest_arch=3) is True
    assert isrb.entry(P).referenced == 1
    assert isrb.entry(P).committed == 0

    # The overwrite of P's mapping commits while the sharer is in flight:
    # the register must be kept on behalf of the (speculative) sharer.
    assert isrb.reclaim(P, arch_reg=3) is ReclaimDecision.KEEP
    assert isrb.entry(P).committed == 1

    # Branch misprediction: restore the checkpoint.  committed(1) >
    # restored referenced(0), so P is freed as part of recovery.
    freed = isrb.restore(checkpoint)
    assert freed == [P]
    assert not isrb.is_tracked(P)


def test_pre_checkpoint_sharer_survives_restore():
    """Sharers older than the checkpoint must not be squashed by recovery."""
    isrb = make_isrb()
    P = 11
    assert isrb.try_share(P, dest_arch=2)          # pre-checkpoint sharer
    checkpoint = isrb.checkpoint()
    assert isrb.try_share(P, dest_arch=4)          # wrong-path sharer
    assert isrb.entry(P).referenced == 2

    freed = isrb.restore(checkpoint)
    assert freed == []
    assert isrb.entry(P).referenced == 1

    # The surviving sharer commits; two committed overwrites then free P.
    isrb.on_share_commit(P)
    assert isrb.reclaim(P, arch_reg=2) is ReclaimDecision.KEEP
    assert isrb.reclaim(P, arch_reg=4) is ReclaimDecision.FREE
    assert not isrb.is_tracked(P)


def test_freed_entry_is_gang_reset_in_live_checkpoints():
    """Restoring must never resurrect a register that was freed in between."""
    isrb = make_isrb()
    P = 5
    assert isrb.try_share(P, dest_arch=1)
    checkpoint = isrb.checkpoint()
    # The sharer commits and the overwrite frees the register normally.
    isrb.on_share_commit(P)
    assert isrb.reclaim(P, arch_reg=1) is ReclaimDecision.KEEP
    assert isrb.reclaim(P, arch_reg=9) is ReclaimDecision.FREE
    # Restoring the stale checkpoint must not bring P back.
    isrb.restore(checkpoint)
    assert not isrb.is_tracked(P)


def test_capacity_and_counter_saturation():
    isrb = make_isrb(entries=2, counter_bits=1)
    assert isrb.try_share(1, dest_arch=0)
    assert isrb.try_share(2, dest_arch=1)
    # Full: a third register cannot be tracked.
    assert isrb.try_share(3, dest_arch=2) is False
    assert isrb.stats.shares_rejected_full == 1
    # 1-bit counter saturates at 1: a second sharer of P1 is refused.
    assert isrb.try_share(1, dest_arch=4) is False
    assert isrb.stats.shares_rejected_saturated == 1


def test_flush_to_committed_frees_speculatively_held_registers():
    isrb = make_isrb()
    assert isrb.try_share(8, dest_arch=1)             # speculative only
    assert isrb.try_share(9, dest_arch=2)
    assert isrb.reclaim(9, arch_reg=2) is ReclaimDecision.KEEP
    freed = isrb.flush_to_committed()
    # P9's committed overwrite was deferred purely for the squashed sharer.
    assert freed == [9]
    assert not isrb.is_tracked(8)
    assert not isrb.is_tracked(9)


def test_storage_bits_matches_section_6_3():
    """32 entries x (9-bit tag + two 3-bit counters) = 480 bits."""
    isrb = make_isrb(entries=32, counter_bits=3)
    assert isrb.storage_bits() == 480
    assert isrb.checkpoint_bits() == 32 * 3


def test_isrb_config_roundtrip():
    config = IsrbConfig(entries=16, counter_bits=4, checkpoints=4)
    isrb = InflightSharedRegisterBuffer(config)
    assert isrb.capacity == 16
    assert isrb.config.scheme == "isrb"


def test_restore_unknown_checkpoint_raises():
    isrb = make_isrb()
    with pytest.raises(KeyError):
        isrb.restore(123)
