"""Unit tests for the front-end predictors: TAGE, BTB and the RAS.

The TAGE tests walk one branch through a scripted allocate/train sequence
on a small two-component predictor and assert each intermediate prediction
-- provider selection, the weak-entry alternate-prediction policy, the
allocation-on-misprediction rule, and the useful-counter update rule
(useful moves only when provider and alternate disagree).

With 3-bit counters the weakly-taken threshold is 4; a freshly allocated
not-taken entry starts at 3.
"""

from __future__ import annotations

import pytest

from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.ras import ReturnAddressStack
from repro.bpred.tage import TageBranchPredictor, TageComponentConfig, TageConfig
from repro.common.history import PathHistory, ShiftHistory

PC = 0x40


def _small_tage() -> TageBranchPredictor:
    return TageBranchPredictor(TageConfig(
        base_entries=16,
        components=(TageComponentConfig(16, 8, 4), TageComponentConfig(16, 8, 8)),
    ))


def _fresh_histories() -> tuple[ShiftHistory, PathHistory]:
    return ShiftHistory(max_bits=256), PathHistory(max_bits=32)


# ---------------------------------------------------------------------------
# TAGE worked example
# ---------------------------------------------------------------------------


def test_tage_worked_example_allocation_and_useful_bits():
    predictor = _small_tage()
    history, path = _fresh_histories()

    # 1. Cold predictor: the base bimodal counter (4 = weakly taken) provides.
    p1 = predictor.predict(PC, history, path)
    assert (p1.provider, p1.taken, p1.weak) == (-1, True, True)

    # 2. The branch is actually not taken: base trains down to 3 and the
    #    misprediction allocates a not-taken (counter 3) entry in comp 0.
    predictor.update(PC, False, p1)
    assert predictor._base[p1.base_index] == 3
    entry0 = predictor._tables[0][p1.indices[0]]
    assert entry0.valid and entry0.tag == p1.tags[0]
    assert (entry0.counter, entry0.useful) == (3, 0)

    # 3. Comp 0 now provides, but a weak entry with useful == 0 defers to
    #    the alternate prediction (the base table).
    p2 = predictor.predict(PC, history, path)
    assert (p2.provider, p2.alt_provider) == (0, -1)
    assert p2.weak
    assert p2.taken is False            # alt (base counter 3) says not taken
    predictor.update(PC, False, p2)     # correct: comp0 3->2, weak trains base 3->2
    assert entry0.counter == 2
    assert predictor._base[p2.base_index] == 2

    # 4. Strong-enough comp 0 entry mispredicts a taken flip: a taken entry
    #    (counter 4) is allocated in the longer-history comp 1.
    p3 = predictor.predict(PC, history, path)
    assert (p3.provider, p3.taken, p3.weak) == (0, False, False)
    predictor.update(PC, True, p3)
    assert entry0.counter == 3
    entry1 = predictor._tables[1][p3.indices[1]]
    assert entry1.valid and (entry1.counter, entry1.useful) == (4, 0)

    # 5. Comp 1 (longest history) now provides; it is freshly allocated and
    #    weak, so the alternate (comp 0, counter 3 -> not taken) overrides.
    p4 = predictor.predict(PC, history, path)
    assert (p4.provider, p4.alt_provider) == (1, 0)
    assert p4.taken is False
    predictor.update(PC, True, p4)      # provider counter 4 -> 5
    assert entry1.counter == 5

    # 6. Comp 1 is strong now: prediction taken, alternate disagrees, and a
    #    correct outcome finally moves the useful counter.
    p5 = predictor.predict(PC, history, path)
    assert (p5.provider, p5.taken, p5.weak) == (1, True, False)
    assert p5.alt_taken is False
    predictor.update(PC, True, p5)
    assert entry1.useful == 1


def test_tage_useful_counter_decrements_on_wrong_provider():
    predictor = _small_tage()
    history, path = _fresh_histories()
    # Recreate the end state of the worked example: comp1 strong + useful=1.
    for taken in (False, False, True, True, True):
        prediction = predictor.predict(PC, history, path)
        predictor.update(PC, taken, prediction)
    prediction = predictor.predict(PC, history, path)
    entry1 = predictor._tables[1][prediction.indices[1]]
    assert entry1.useful == 1
    # Provider says taken, alternate says not taken, outcome not taken:
    # provider was wrong while differing from the alternate -> useful 1 -> 0.
    predictor.update(PC, False, prediction)
    assert entry1.useful == 0


def test_tage_history_changes_component_indices():
    predictor = _small_tage()
    history, path = _fresh_histories()
    p_before = predictor.predict(PC, history, path)
    for outcome in (True, False, True, True):
        history.push(outcome)
        path.push(PC)
    p_after = predictor.predict(PC, history, path)
    assert p_before.base_index == p_after.base_index     # PC-indexed only
    assert p_before.indices != p_after.indices           # history-hashed


def test_tage_storage_matches_hand_sum():
    predictor = _small_tage()
    # base: 16 * 3; components: 16 * (8 + 3 + 2) each.
    assert predictor.storage_bits() == 16 * 3 + 2 * 16 * 13


def test_tage_snapshot_roundtrip_preserves_predictions():
    predictor = _small_tage()
    history, path = _fresh_histories()
    for taken in (False, False, True, True, True):
        prediction = predictor.predict(PC, history, path)
        predictor.update(PC, taken, prediction)
    restored = _small_tage()
    restored.restore_snapshot(predictor.to_snapshot())
    original = predictor.predict(PC, history, path)
    clone = restored.predict(PC, history, path)
    assert (original.taken, original.provider, original.weak) == \
        (clone.taken, clone.provider, clone.weak)


# ---------------------------------------------------------------------------
# Branch target buffer
# ---------------------------------------------------------------------------


def test_btb_lru_replacement_within_a_set():
    # 4 entries, 2 ways -> 2 sets; pcs 0, 8, 16 all map to set 0.
    btb = BranchTargetBuffer(entries=4, ways=2)
    btb.update(0, 100)
    btb.update(8, 200)
    assert btb.lookup(0) == 100        # refresh: LRU order now [8, 0]
    btb.update(16, 300)                # evicts 8
    assert btb.lookup(8) is None
    assert btb.lookup(0) == 100
    assert btb.lookup(16) == 300
    assert (btb.hits, btb.misses) == (3, 1)


def test_btb_update_refreshes_existing_entry():
    btb = BranchTargetBuffer(entries=4, ways=2)
    btb.update(0, 100)
    btb.update(8, 200)
    btb.update(0, 104)                 # re-update: new target, MRU position
    btb.update(16, 300)                # must evict 8, not 0
    assert btb.lookup(0) == 104
    assert btb.lookup(8) is None


def test_btb_validation():
    with pytest.raises(ValueError):
        BranchTargetBuffer(entries=5, ways=2)
    with pytest.raises(ValueError):
        BranchTargetBuffer(entries=0, ways=1)


# ---------------------------------------------------------------------------
# Return address stack
# ---------------------------------------------------------------------------


def test_ras_push_pop_lifo():
    ras = ReturnAddressStack(depth=4)
    ras.push(0x100)
    ras.push(0x200)
    assert ras.peek() == 0x200
    assert ras.pop() == 0x200
    assert ras.pop() == 0x100
    assert len(ras) == 0


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(depth=2)
    ras.push(0x100)
    ras.push(0x200)
    ras.push(0x300)                    # overflow: 0x100 is lost
    assert ras.overflows == 1
    assert ras.pop() == 0x300
    assert ras.pop() == 0x200
    assert ras.pop() is None           # 0x100 is gone -> underflow
    assert ras.underflows == 1


def test_ras_snapshot_roundtrip_and_depth_check():
    ras = ReturnAddressStack(depth=4)
    for address in (0x100, 0x200, 0x300):
        ras.push(address)
    restored = ReturnAddressStack(depth=4)
    restored.restore_snapshot(ras.to_snapshot())
    assert restored.pop() == 0x300 and restored.pop() == 0x200
    with pytest.raises(ValueError):
        ReturnAddressStack(depth=2).restore_snapshot([1, 2, 3])
