"""Trace import/export round trips and the file/fuzz workload families.

The importer's contract is strong: a trace that travels through
``export_trace`` -> disk -> ``import_trace`` must be *indistinguishable*
from the original to the detailed core -- identical micro-op records,
byte-identical simulation statistics and identical end-of-run snapshot
digests.  The rest of the file covers the failure surface (malformed
headers, bad records) and the dynamic workload families that feed traces
and generated programs into the harness (``trace:``, ``riscv:``,
``fuzz:``).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

import pytest

from repro.isa.trace_io import TraceFormatError, export_trace, import_trace
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core
from repro.workloads import (
    build_workload,
    generate_trace,
    get_workload,
    materialize_trace,
    workload_cache_token,
)
from repro.workloads.fuzz import FUZZ_PROFILES, fuzz_image

REPO_ROOT = Path(__file__).resolve().parents[1]
SAMPLE_BIN = REPO_ROOT / "examples" / "rv32i" / "checksum.bin"

MAX_OPS = 1_200

#: A scheme config that exercises sharing, so the round-trip equality below
#: covers result values and store values (the fields sharing validates).
SHARING = (CoreConfig().with_tracker("isrb", entries=32, counter_bits=3)
           .with_move_elimination().with_smb())


def _source_trace():
    return materialize_trace("fuzz_mix", max_ops=MAX_OPS, seed=7)


# -- round trips ---------------------------------------------------------------------


@pytest.mark.parametrize("suffix", [".jsonl", ".jsonl.gz"])
def test_roundtrip_records_are_identical(tmp_path, suffix):
    """Every micro-op record survives the disk trip exactly."""
    trace = _source_trace()
    path = tmp_path / f"t{suffix}"
    written = export_trace(trace, path)
    assert written == len(trace.ops)

    back = import_trace(path)
    assert back.name == trace.name
    assert back.ops == trace.ops          # frozen dataclass equality, all fields


def test_roundtrip_simulation_is_byte_identical(tmp_path):
    """Imported traces replay to the same stats and snapshot digest."""
    trace = _source_trace()
    path = tmp_path / "t.jsonl"
    export_trace(trace, path)
    back = import_trace(path)

    digests = []
    for candidate in (trace, back):
        core = Core(SHARING)
        result = core.run(candidate)
        digests.append((result.cycles, result.instructions, result.stats,
                        core.snapshot().digest()))
    assert digests[0] == digests[1]


def test_import_truncates_at_max_ops(tmp_path):
    path = tmp_path / "t.jsonl"
    export_trace(_source_trace(), path)
    short = import_trace(path, max_ops=100)
    assert len(short.ops) == 100
    # Truncation must not trip the header op-count cross-check.
    assert short.ops == _source_trace().ops[:100]


def test_import_renames_on_request(tmp_path):
    path = tmp_path / "t.jsonl"
    export_trace(_source_trace(), path)
    assert import_trace(path, name="other").name == "other"


# -- failure surface -----------------------------------------------------------------


def _write(tmp_path, lines):
    path = tmp_path / "bad.jsonl"
    path.write_text("\n".join(lines) + "\n")
    return path


_HEADER = json.dumps({"format": "repro-uop-trace", "version": 1,
                      "name": "t", "ops": 1})
_GOOD_OP = json.dumps({"q": 0, "p": 0, "x": 0, "o": "movi", "d": "r1",
                       "s": [], "w": 64, "h": 0, "i": 5, "v": 5, "a": None,
                       "z": 8, "sv": None, "n": 1, "t": 0, "g": None})


def test_import_accepts_the_minimal_wellformed_file(tmp_path):
    trace = import_trace(_write(tmp_path, [_HEADER, _GOOD_OP]))
    assert len(trace.ops) == 1 and trace.ops[0].imm == 5


@pytest.mark.parametrize("lines,match", [
    (["this is not json"], "header is not JSON"),
    ([json.dumps({"format": "champsim"})], "not a repro-uop-trace"),
    ([json.dumps({"format": "repro-uop-trace", "version": 99})],
     "unsupported trace version"),
    ([_HEADER, "{not json"], "bad JSON record"),
    ([_HEADER, json.dumps({"q": 0, "p": 0, "x": 0, "o": "frobnicate"})],
     "unknown opcode"),
    ([_HEADER, json.dumps({"q": 0, "p": 0, "x": 0, "o": "movi", "d": "q9"})],
     "bad register name"),
    ([_HEADER, json.dumps({"o": "movi"})], "bad record"),
    ([_HEADER, _GOOD_OP, _GOOD_OP], "promises 1 ops, file has 2"),
], ids=["bad-header-json", "wrong-format", "wrong-version", "bad-record-json",
        "unknown-opcode", "bad-register", "missing-fields", "op-count"])
def test_import_rejects_malformed_files(tmp_path, lines, match):
    with pytest.raises(TraceFormatError, match=match):
        import_trace(_write(tmp_path, lines))


def test_import_reports_unreadable_path(tmp_path):
    with pytest.raises(TraceFormatError, match="cannot read trace"):
        import_trace(tmp_path / "missing.jsonl")


def test_gzip_suffix_really_compresses(tmp_path):
    path = tmp_path / "t.jsonl.gz"
    export_trace(_source_trace(), path)
    with gzip.open(path, "rt", encoding="utf-8") as stream:
        header = json.loads(stream.readline())
    assert header["ops"] == MAX_OPS


# -- the trace: workload family ------------------------------------------------------


def test_trace_family_replays_the_file(tmp_path):
    path = tmp_path / "recorded.jsonl"
    export_trace(_source_trace(), path)
    name = f"trace:{path}"

    spec = get_workload(name)
    assert spec.cache_token.startswith("trace-recorded-")

    replay = generate_trace(name, max_ops=MAX_OPS, seed=123)  # seed ignored
    assert replay.name == name
    assert replay.ops == _source_trace().ops


def test_trace_family_rejects_functional_execution(tmp_path):
    """No program to re-execute: sampled mode must fail with guidance."""
    path = tmp_path / "recorded.jsonl"
    export_trace(_source_trace(), path)
    with pytest.raises(ValueError, match="not sampled mode"):
        build_workload(f"trace:{path}")


def test_trace_family_cache_token_tracks_file_content(tmp_path):
    path = tmp_path / "recorded.jsonl"
    export_trace(_source_trace(), path)
    before = workload_cache_token(f"trace:{path}")
    export_trace(materialize_trace("fuzz_mem", max_ops=200, seed=9), path)
    after = workload_cache_token(f"trace:{path}")
    assert before != after


@pytest.mark.parametrize("name,match", [
    ("trace:", "names no file"),
    ("trace:/nonexistent/x.jsonl", "no such file"),
    ("riscv:", "names no file"),
    ("riscv:/nonexistent/x.bin", "no such file"),
])
def test_file_families_reject_missing_files(name, match):
    with pytest.raises(KeyError, match=match):
        get_workload(name)


def test_riscv_family_cache_token_is_content_hashed():
    token = workload_cache_token(f"riscv:{SAMPLE_BIN}")
    assert token.startswith("riscv-checksum-")
    assert token == workload_cache_token(f"riscv:{SAMPLE_BIN}")


# -- the fuzz: workload family -------------------------------------------------------


def test_fuzz_images_are_deterministic_across_processes():
    """Same (seed, profile) -> identical dynamic traces (no hash() salting)."""
    first = fuzz_image(7, "mem").execute(max_ops=MAX_OPS)
    second = fuzz_image(7, "mem").execute(max_ops=MAX_OPS)
    assert first.ops == second.ops


def test_fuzz_profiles_are_salted_apart():
    """Same seed, different profile -> genuinely different programs."""
    traces = {profile: fuzz_image(7, profile).execute(max_ops=MAX_OPS)
              for profile in FUZZ_PROFILES}
    streams = [tuple(op.opcode for op in trace.ops)
               for trace in traces.values()]
    assert len(set(streams)) == len(streams)


def test_fuzz_family_pins_the_seed_when_given():
    pinned = materialize_trace("fuzz:mem:42", max_ops=400, seed=1)
    other_seed = materialize_trace("fuzz:mem:42", max_ops=400, seed=999)
    assert pinned.ops == other_seed.ops
    assert pinned.ops == fuzz_image(42, "mem").execute(max_ops=400).ops


def test_fuzz_family_unpinned_uses_the_harness_seed():
    one = materialize_trace("fuzz:mem", max_ops=400, seed=1)
    two = materialize_trace("fuzz:mem", max_ops=400, seed=2)
    assert one.ops != two.ops


def test_fuzz_family_cache_tokens():
    assert workload_cache_token("fuzz_mix") == "fuzz_mix"
    assert workload_cache_token("fuzz:mem:42") == "fuzz-mem-42"
    assert workload_cache_token("fuzz:branch") == "fuzz-branch"


@pytest.mark.parametrize("name,exc,match", [
    ("fuzz:nope", KeyError, "unknown fuzz profile"),
    ("fuzz:mem:banana", KeyError, "bad fuzz seed"),
])
def test_fuzz_family_rejects_bad_names(name, exc, match):
    with pytest.raises(exc, match=match):
        get_workload(name)


def test_fuzz_image_rejects_unknown_profile():
    with pytest.raises(ValueError, match="unknown fuzz profile"):
        fuzz_image(1, "nope")


def test_registered_fuzz_workloads_match_the_family():
    """``fuzz_mem`` (suite name) and ``fuzz:mem`` (family) are the same."""
    assert (materialize_trace("fuzz_mem", max_ops=400, seed=3).ops
            == materialize_trace("fuzz:mem", max_ops=400, seed=3).ops)
