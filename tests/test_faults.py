"""Chaos suite: deterministic fault injection against the sweep scheduler.

The contract pinned here is the headline robustness invariant: a sweep
bombarded with injected worker crashes (real SIGKILLs), hangs past the
watchdog, transient raises and torn store writes **converges to
byte-identical artifacts and store contents** as a fault-free run -- every
fault is survived by a retry, a respawn or a repair, never by losing a
cell.  The suite also pins the failure edges: persistent faults end in
quarantined (not lost) cells, timed-out workers are terminated and reaped
with no orphan surviving, ``KeyboardInterrupt`` leaves the store clean and
resumable, and concurrent resumable runs partition work through leases.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.experiments.faults import FAULT_KINDS, FaultPlan, TransientFault
from repro.experiments.runner import _execute_job, run_jobs, run_sweep
from repro.experiments.scheduler import ReliabilityStats, RetryPolicy
from repro.paper.store import ResultsStore, TornWriteError
from repro.telemetry import RunLogger

#: Fast, deterministic retries for tests (no multi-second backoffs).
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_cap=0.05)


# -- fault plan determinism ----------------------------------------------------------


def test_fault_plan_assignment_is_deterministic_and_bounded():
    plan = FaultPlan(seed=11, rate=0.5)
    ids = [f"job{i}" for i in range(200)]
    first = [plan.fault_for(job_id) for job_id in ids]
    assert first == [FaultPlan(seed=11, rate=0.5).fault_for(j) for j in ids]
    hit = [kind for kind in first if kind is not None]
    assert 40 < len(hit) < 160  # ~rate, not all, not none
    assert set(hit) <= set(FAULT_KINDS)
    # A different seed draws a different assignment somewhere.
    assert first != [FaultPlan(seed=12, rate=0.5).fault_for(j) for j in ids]
    # Rate bounds.
    assert all(FaultPlan(seed=1, rate=0.0).fault_for(j) is None for j in ids)
    assert all(FaultPlan(seed=1, rate=1.0).fault_for(j) is not None for j in ids)


def test_fault_plan_first_attempt_only_unless_persistent():
    plan = FaultPlan(seed=3, rate=1.0, kinds=("raise",))
    assert plan.fault_for("cell", attempt=1) == "raise"
    assert plan.fault_for("cell", attempt=2) is None
    sticky = FaultPlan(seed=3, rate=1.0, kinds=("raise",), every_attempt=True)
    assert sticky.fault_for("cell", attempt=5) == "raise"


def test_fault_plan_validates_inputs():
    with pytest.raises(ValueError):
        FaultPlan(seed=1, kinds=("explode",))
    with pytest.raises(ValueError):
        FaultPlan(seed=1, kinds=())
    with pytest.raises(ValueError):
        FaultPlan(seed=1, rate=1.5)


def test_in_process_crash_and_hang_degrade_to_transient():
    plan = FaultPlan(seed=1, rate=1.0, kinds=("crash",))
    with pytest.raises(TransientFault):
        plan.trip("cell", attempt=1, in_process=True)
    plan = FaultPlan(seed=1, rate=1.0, kinds=("hang",))
    with pytest.raises(TransientFault):
        plan.trip("cell", attempt=1, in_process=True)
    # torn_write is store-side: trip never fires it.
    FaultPlan(seed=1, rate=1.0, kinds=("torn_write",)).trip("cell", attempt=1)


# -- the headline invariant: chaos converges to clean bytes --------------------------


@pytest.fixture(scope="module")
def clean_reference(tmp_path_factory, chaos_spec):
    """Fault-free report + canonical (compacted) store bytes."""
    out = tmp_path_factory.mktemp("chaos_clean")
    store = ResultsStore(out / "results.jsonl", fsync=False)
    report = run_sweep(chaos_spec, cache_dir=None, store=store)
    store.close()
    store.compact()
    return report, (out / "results.jsonl").read_bytes()


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_fault_injected_sweep_is_byte_identical_to_clean(
        kind, seed, tmp_path, clean_reference, chaos_spec):
    clean_report, clean_store_bytes = clean_reference
    plan = FaultPlan(seed=seed, rate=1.0, kinds=(kind,), hang_seconds=10.0)
    # crash needs a real worker process to kill; hang needs a watchdog.
    workers = 2 if kind in ("crash", "hang") else 1
    timeout = 0.5 if kind == "hang" else 30.0
    stats = ReliabilityStats()
    store = ResultsStore(tmp_path / "results.jsonl", fsync=False)
    report = run_sweep(chaos_spec, workers=workers, cache_dir=None,
                       timeout=timeout, store=store, fault_plan=plan,
                       retry=FAST_RETRY, stats=stats)
    store.close()
    store.compact()

    assert not report.failures  # zero lost cells, zero quarantines
    assert report.to_json() == clean_report.to_json()
    assert report.to_markdown() == clean_report.to_markdown()
    assert (tmp_path / "results.jsonl").read_bytes() == clean_store_bytes
    # The faults really fired and were survived by the machinery.
    expected = {"crash": lambda: stats.crashes,
                "hang": lambda: stats.timeouts,
                "raise": lambda: stats.transient_faults,
                "torn_write": lambda: stats.torn_writes_recovered}
    assert expected[kind]() >= 1
    # Every worker ever spawned is reaped: no orphan survives the sweep.
    for pid in stats.worker_pids:
        with pytest.raises(OSError):
            os.kill(pid, 0)


# -- quarantine: persistent failure ends in a failed cell, never a lost one ----------


def test_persistent_fault_quarantines_cells_and_reports_them(tiny_jobs):
    jobs = tiny_jobs
    plan = FaultPlan(seed=5, rate=1.0, kinds=("raise",), every_attempt=True)
    stats = ReliabilityStats()
    logger = RunLogger()
    results = run_jobs(jobs, fault_plan=plan, retry=FAST_RETRY, stats=stats,
                       logger=logger)
    assert len(results) == len(jobs)  # no lost cells
    assert all(not r.ok for r in results)
    for result in results:
        assert "quarantined after 3 failed attempt(s)" in result.error
    assert stats.quarantined == len(jobs)
    assert stats.retries == 2 * len(jobs)
    # The events flowed through the logger, and the failures hit the footer.
    assert logger.counters.get("job_retry") == 2 * len(jobs)
    assert logger.counters.get("job_quarantined") == len(jobs)
    assert logger.counters.get("job_failed") == len(jobs)
    from repro.experiments.report import build_report

    footer = build_report(results).to_markdown()
    assert f"{len(jobs)} job(s) failed:" in footer
    assert "quarantined" in footer


# -- satellite: timeouts terminate + reap, never orphan ------------------------------


def test_timed_out_worker_is_terminated_and_no_orphan_survives(tiny_jobs):
    jobs = tiny_jobs
    plan = FaultPlan(seed=7, rate=1.0, kinds=("hang",), every_attempt=True,
                     hang_seconds=30.0)
    stats = ReliabilityStats()
    retry = RetryPolicy(max_attempts=2, backoff_base=0.01)
    results = run_jobs(jobs, workers=2, timeout=0.4, fault_plan=plan,
                       retry=retry, stats=stats)
    assert all(not r.ok for r in results)
    assert all("timed out after 0.4s" in r.error for r in results)
    assert stats.timeouts == 2 * len(jobs)
    assert stats.worker_pids  # the pool really ran processes
    for pid in stats.worker_pids:
        with pytest.raises(OSError):  # every one reaped -- no orphans
            os.kill(pid, 0)


def test_timeout_without_retry_fails_fast_with_old_error_text(tiny_jobs):
    jobs = tiny_jobs
    plan = FaultPlan(seed=7, rate=1.0, kinds=("hang",), every_attempt=True)
    retry = RetryPolicy(max_attempts=3, retry_timeouts=False)
    results = run_jobs(jobs, workers=2, timeout=0.4, fault_plan=plan,
                       retry=retry)
    assert all(r.error == "timed out after 0.4s" for r in results)


# -- satellite: real SIGKILL of a worker ---------------------------------------------


def test_sigkilled_worker_is_respawned_and_sweep_completes(tmp_path, chaos_spec):
    """The crash fault is a real ``os.kill(pid, SIGKILL)`` inside the
    worker -- the supervisor must notice the death, respawn, retry."""
    jobs = chaos_spec.expand()
    plan = FaultPlan(seed=2, rate=1.0, kinds=("crash",))
    stats = ReliabilityStats()
    results = run_jobs(jobs, workers=2, cache_dir=str(tmp_path),
                       fault_plan=plan, retry=FAST_RETRY, stats=stats)
    assert all(r.ok for r in results)
    assert stats.crashes >= len(jobs)  # every first attempt was SIGKILLed
    assert stats.workers_spawned > 2  # replacements were spawned
    clean = run_jobs(jobs, workers=1, cache_dir=str(tmp_path))
    for survived, reference in zip(results, clean):
        assert survived.result.to_dict() == reference.result.to_dict()


# -- satellite: KeyboardInterrupt leaves the store clean and resumable ---------------


def test_keyboard_interrupt_mid_sweep_is_resumable(tmp_path, tiny_jobs):
    jobs = tiny_jobs
    path = tmp_path / "results.jsonl"
    store = ResultsStore(path, fsync=False)

    def interrupt_after_first(_done, _total, job_result):
        if not job_result.from_store:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_jobs(jobs, store=store, progress=interrupt_after_first)

    # The store was flushed and closed on a line boundary, leases released.
    assert path.read_bytes().endswith(b"\n")
    assert store.owned_leases == set()
    assert store._lease_state() == {}

    # The resumed run simulates exactly the pending cells.
    resumed = ResultsStore(path, fsync=False)
    results = run_jobs(jobs, store=resumed)
    assert [r.from_store for r in results] == [True, False]
    assert resumed.stats.appended == 1
    assert all(r.ok for r in results)


def test_pool_keyboard_interrupt_drains_completed_cells(tmp_path, chaos_spec):
    """A cancelled pool sweep keeps every already-finished cell."""
    jobs = chaos_spec.expand()
    path = tmp_path / "results.jsonl"
    store = ResultsStore(path, fsync=False)
    seen = []

    def interrupt_on_third(_done, _total, job_result):
        if not job_result.from_store:
            seen.append(job_result.job.job_id)
            if len(seen) == 3:
                raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_jobs(jobs, workers=2, cache_dir=str(tmp_path / "cache"),
                 store=store, progress=interrupt_on_third)
    assert path.read_bytes().endswith(b"\n")
    assert store._lease_state() == {}

    resumed = ResultsStore(path, fsync=False)
    results = run_jobs(jobs, store=resumed, cache_dir=str(tmp_path / "cache"))
    assert all(r.ok for r in results)
    assert sum(1 for r in results if r.from_store) >= 3


# -- leases: claim / release / stale reclaim / partition -----------------------------


def test_lease_claim_is_exclusive_until_released(tmp_path, tiny_jobs, fake_clock):
    clock = fake_clock
    path = tmp_path / "results.jsonl"
    a = ResultsStore(path, owner="a", clock=clock, lease_ttl=10.0)
    b = ResultsStore(path, owner="b", clock=clock, lease_ttl=10.0)
    job = tiny_jobs[0]
    assert a.claim(job) == "fresh"
    assert b.claim(job) is None
    assert b.lease_holder(job)["owner"] == "a"
    a.release(job)
    assert a.owned_leases == set()
    assert b.claim(job) == "fresh"


def test_stale_lease_is_reclaimed_and_heartbeat_prevents_it(
        tmp_path, tiny_jobs, fake_clock):
    clock = fake_clock
    path = tmp_path / "results.jsonl"
    a = ResultsStore(path, owner="a", clock=clock, lease_ttl=10.0)
    b = ResultsStore(path, owner="b", clock=clock, lease_ttl=10.0)
    job = tiny_jobs[0]
    assert a.claim(job) == "fresh"
    clock.now += 8.0
    assert a.heartbeat_owned(min_interval=0.0) == 1  # refreshed before expiry
    clock.now += 8.0  # past the original expiry, inside the refreshed one
    assert b.claim(job) is None
    clock.now += 11.0  # now genuinely stale
    assert b.claim(job) == "reclaimed"
    # The old owner's heartbeat no longer revives its lost lease.
    a.heartbeat_owned(min_interval=0.0)
    assert b.lease_holder(job)["owner"] == "b"


def test_release_owned_clears_every_lease(tmp_path, tiny_jobs, fake_clock):
    clock = fake_clock
    store = ResultsStore(tmp_path / "r.jsonl", owner="a", clock=clock,
                         lease_ttl=10.0)
    jobs = tiny_jobs
    for job in jobs:
        assert store.claim(job) == "fresh"
    assert store.release_owned() == len(jobs)
    assert store._lease_state() == {}


def test_concurrent_resumable_runs_partition_work(tmp_path, tiny_jobs):
    """Two runs over one store: cells leased by the other run are awaited
    (not duplicated), and both runs end with the full result set."""
    jobs = tiny_jobs
    path = tmp_path / "results.jsonl"
    other = ResultsStore(path, owner="other", fsync=False)
    assert other.claim(jobs[1]) == "fresh"

    def other_run():
        time.sleep(0.5)
        ok, result, _error, _elapsed = _execute_job((jobs[1], None, None, True))
        assert ok
        other.record(jobs[1], result)
        other.release(jobs[1])
        other.close()

    thread = threading.Thread(target=other_run)
    thread.start()
    try:
        mine = ResultsStore(path, fsync=False)
        stats = ReliabilityStats()
        results = run_jobs(jobs, store=mine, stats=stats)
    finally:
        thread.join()
    assert all(r.ok for r in results)
    assert results[1].from_store  # came from the other run, not re-simulated
    assert stats.cells_awaited == 1
    assert mine.stats.appended == 1  # we only simulated our own cell
    mine.close()


def test_stale_leased_cell_is_reclaimed_and_run(tmp_path, tiny_jobs):
    """A cell whose owner crashed (lease expired, no result) is reclaimed."""
    jobs = tiny_jobs
    path = tmp_path / "results.jsonl"
    crashed = ResultsStore(path, owner="crashed", fsync=False, lease_ttl=0.05)
    assert crashed.claim(jobs[0]) == "fresh"
    time.sleep(0.1)  # the owner dies without releasing; the lease goes stale

    mine = ResultsStore(path, fsync=False)
    stats = ReliabilityStats()
    results = run_jobs(jobs, store=mine, stats=stats)
    assert all(r.ok and not r.from_store for r in results)
    assert stats.leases_reclaimed >= 1
    assert mine.stats.appended == len(jobs)


# -- store durability: fsync, torn-line repair, verify/compact -----------------------


def test_repair_truncates_torn_tail_only(tmp_path, tiny_jobs):
    jobs = tiny_jobs
    path = tmp_path / "results.jsonl"
    store = ResultsStore(path, fsync=False)
    run_jobs(jobs, store=store)
    store.close()
    intact = path.read_bytes()
    path.write_bytes(intact + b'{"v": 1, "key": "torn", "resu')

    again = ResultsStore(path)
    assert again.verify()["torn_tail"] is True
    removed = again.repair()
    assert removed == len(b'{"v": 1, "key": "torn", "resu')
    assert path.read_bytes() == intact
    assert again.repair() == 0  # idempotent


def test_record_torn_then_repair_converges_to_identical_bytes(tmp_path, tiny_jobs):
    jobs = tiny_jobs
    ok, result, _error, _elapsed = _execute_job((jobs[0], None, None, True))
    assert ok

    clean = ResultsStore(tmp_path / "clean.jsonl", fsync=False)
    clean.record(jobs[0], result)
    clean.close()

    torn = ResultsStore(tmp_path / "torn.jsonl", fsync=False)
    with pytest.raises(TornWriteError):
        torn.record_torn(jobs[0], result)
    assert not (tmp_path / "torn.jsonl").read_bytes().endswith(b"\n")
    torn.repair()
    torn.record(jobs[0], result)
    torn.close()
    assert ((tmp_path / "torn.jsonl").read_bytes()
            == (tmp_path / "clean.jsonl").read_bytes())


def test_compact_canonicalizes_order_duplicates_and_meta(tmp_path, chaos_spec):
    jobs = chaos_spec.expand()
    executed = [(job, _execute_job((job, None, None, True))[1]) for job in jobs]

    forward = ResultsStore(tmp_path / "fwd.jsonl", fsync=False)
    for job, result in executed:
        forward.record(job, result, meta={"elapsed_seconds": 1.23})
    forward.close()

    backward = ResultsStore(tmp_path / "bwd.jsonl", fsync=False)
    for job, result in reversed(executed):
        backward.record(job, result, meta={"elapsed_seconds": 9.87})
    # A duplicate append and a torn tail must both disappear.
    backward.record(executed[0][0], executed[0][1])
    with pytest.raises(TornWriteError):
        backward.record_torn(executed[1][0], executed[1][1])
    backward.close()

    assert forward.compact()["records_kept"] == len(jobs)
    outcome = backward.compact()
    assert outcome["records_kept"] == len(jobs)
    assert outcome["duplicates_dropped"] == 1
    assert outcome["torn_tail_dropped"] is True
    assert ((tmp_path / "fwd.jsonl").read_bytes()
            == (tmp_path / "bwd.jsonl").read_bytes())
    # Compacted stores still resume.
    resumed = ResultsStore(tmp_path / "fwd.jsonl")
    assert all(resumed.has(job) for job in jobs)


def test_verify_reports_damage_and_lease_hygiene(tmp_path, tiny_jobs, fake_clock):
    clock = fake_clock
    jobs = tiny_jobs
    path = tmp_path / "results.jsonl"
    store = ResultsStore(path, fsync=False, clock=clock, lease_ttl=10.0)
    run_jobs(jobs, store=store)
    store.close()
    store.claim(jobs[0])          # live lease
    clock.now += 100.0            # ...now stale

    lines = path.read_text().splitlines()
    lines[0] = "{garbage"
    path.write_text("\n".join(lines) + "\n" + '{"torn')

    report = ResultsStore(path, clock=clock).verify()
    assert report["corrupt_lines"] == 2  # the garbage line + the torn tail
    assert report["torn_tail"] is True
    assert report["records"] == len(jobs) - 1
    assert report["leases_stale"] == 1 and report["leases_live"] == 0


def test_fsync_is_on_by_default_and_optional():
    assert ResultsStore("unused.jsonl").fsync is True
    assert ResultsStore("unused.jsonl", fsync=False).fsync is False


# -- reliability surfacing -----------------------------------------------------------


def test_reliability_summary_line_mentions_what_happened():
    stats = ReliabilityStats(attempts=9, retries=3, crashes=1, timeouts=1,
                             transient_faults=1, quarantined=1,
                             torn_writes_recovered=2, leases_claimed=6,
                             leases_reclaimed=1, cells_awaited=2)
    line = stats.summary_line(6)
    assert line.startswith("reliability: 9 attempt(s) for 6 job(s)")
    for fragment in ("3 retried", "1 crash(es)", "1 timeout(s)",
                     "1 transient(s)", "1 quarantined",
                     "2 torn write(s) repaired", "6 lease(s) claimed",
                     "1 stale reclaimed", "2 awaited"):
        assert fragment in line
    quiet = ReliabilityStats(attempts=4).summary_line(4)
    assert quiet == "reliability: 4 attempt(s) for 4 job(s)"
    assert stats.as_dict()["retries"] == 3


def test_retry_policy_backoff_is_bounded_and_deterministic():
    retry = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.3)
    assert [retry.backoff(n) for n in (1, 2, 3, 4)] == [0.1, 0.2, 0.3, 0.3]
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


def test_transient_faults_retry_in_process_and_converge(tmp_path, tiny_jobs):
    """The in-process backend retries injected transients with backoff and
    produces results identical to an uninjected run."""
    jobs = tiny_jobs
    plan = FaultPlan(seed=9, rate=1.0, kinds=("raise",))
    stats = ReliabilityStats()
    slept = []
    from repro.experiments.scheduler import InProcessScheduler

    delivered = {}
    backend = InProcessScheduler(
        _execute_job, retry=FAST_RETRY, fault_plan=plan, stats=stats,
        sleep=slept.append)
    backend.run(jobs, cache_root=str(tmp_path),
                deliver=lambda i, ok, res, err, el: delivered.update({i: res}))
    assert stats.retries == len(jobs)
    assert slept == [FAST_RETRY.backoff(1)] * len(jobs)
    clean = run_jobs(jobs, cache_dir=str(tmp_path))
    for index, reference in enumerate(clean):
        assert delivered[index].to_dict() == reference.result.to_dict()
