"""Tests for the benchmark subsystem (suite, report, smoke gate, CLI)."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchConfig,
    BenchReport,
    BenchResult,
    compare_reports,
    run_benchmarks,
)
from repro.experiments.cli import main
from repro.pipeline.sampling import SamplingConfig

TINY = BenchConfig(
    workloads=("move_chain",),
    schemes=("baseline", "isrb"),
    max_ops=300,
    repeat=1,
    sweep=True,
    sweep_workloads=("move_chain",),
    sweep_schemes=("isrb",),
    ff_max_ops=600,
    sampled_workloads=("move_chain",),
    sampled_max_ops=600,
    sampling=SamplingConfig(period=200, window=60, warmup=50, cooldown=40),
    long_workloads=(),
    farm_workload="move_chain",
    farm_schemes=("isrb", "refcount"),
    farm_max_ops=800,
    farm_sampling=SamplingConfig(period=200, window=60, warmup=50, cooldown=40),
    adaptive_workload="move_chain",
    adaptive_max_ops=800,
    adaptive_sampling=SamplingConfig(period=200, window=60, warmup=50, cooldown=40),
    # The paper tier runs the fixed-scale smoke figure grids; it has its
    # own dedicated test below and would dominate this fixture's runtime.
    paper=False,
)

#: CLI flags shared by the bench CLI tests: skip the expensive default-suite
#: sampled, >=1M-op long, and checkpoint-farm tiers.
TINY_CLI = ("--max-ops", "300", "--repeat", "1", "--no-sweep",
            "--no-sampled", "--no-long", "--no-farm-sweep")


class FakeClock:
    """A deterministic perf_counter stand-in (1 ms per reading)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 0.001
        return self.now


# -- configuration -------------------------------------------------------------------


def test_config_rejects_unknown_workload():
    with pytest.raises(ValueError, match="unknown workload"):
        BenchConfig(workloads=("no_such_workload",))


def test_config_rejects_unknown_scheme():
    with pytest.raises(ValueError, match="unknown scheme"):
        BenchConfig(schemes=("isrb", "turbo"))


def test_config_accepts_baseline_pseudo_scheme():
    config = BenchConfig(schemes=("baseline",), workloads=("move_chain",))
    assert config.config_for_scheme("baseline").variant_name().endswith("base")


def test_smoke_preset_is_reduced():
    smoke = BenchConfig.smoke()
    full = BenchConfig()
    assert smoke.max_ops < full.max_ops
    assert len(smoke.workloads) < len(full.workloads)
    assert len(smoke.schemes) < len(full.schemes)


def test_scheme_config_enables_optimisations():
    config = BenchConfig().config_for_scheme("isrb")
    assert config.move_elimination.enabled
    assert config.smb.enabled
    assert config.tracker.scheme == "isrb"


# -- suite ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_report() -> BenchReport:
    return run_benchmarks(TINY, clock=FakeClock())


def test_suite_produces_all_tiers(tiny_report):
    names = [result.name for result in tiny_report.results]
    assert "trace_gen/move_chain" in names
    assert "sim/baseline/move_chain" in names
    assert "sim/isrb/move_chain" in names
    assert "ff/move_chain" in names
    assert "sampled/move_chain" in names
    assert "sweep_farm/move_chain" in names
    assert "adaptive/move_chain" in names
    assert "sweep/small" in names


def test_farm_tier_records_speedup(tiny_report):
    by_name = {result.name: result for result in tiny_report.results}
    farm = by_name["sweep_farm/move_chain"]
    assert farm.ops == 3                      # baseline + two scheme jobs
    assert farm.detail["speedup"] > 0
    assert farm.detail["independent_wall_seconds"] > 0
    assert farm.detail["failures"] == 0
    summary = tiny_report.summary()
    assert summary["sweep_farm_jobs_per_sec"] > 0
    assert summary["sweep_farm_speedup_geomean"] > 0


def test_adaptive_tier_saves_detailed_ops_at_equal_tolerance(tiny_report):
    """Error-budget sampling must not spend more detailed micro-ops than
    the fixed geometry once both target the same achieved tolerance."""
    by_name = {result.name: result for result in tiny_report.results}
    adaptive = by_name["adaptive/move_chain"]
    assert adaptive.kind == "adaptive"
    assert adaptive.detail["windows_adaptive"] >= 2
    assert adaptive.detail["windows_adaptive"] \
        <= adaptive.detail["windows_fixed"]
    assert adaptive.detail["detailed_ops_saved"] >= 0
    assert adaptive.detail["ops_saved_ratio"] >= 1.0
    assert adaptive.detail["probe_ops"] > 0
    assert adaptive.detail["stop_reason"] in ("tolerance", "ceiling", "halted")
    # The paired replay covers the same instruction windows on both sides,
    # so pairing can never *increase* the delta variance.
    assert adaptive.detail["paired_delta_var"] \
        <= adaptive.detail["unpaired_delta_var"] + 1e-12
    summary = tiny_report.summary()
    assert summary["adaptive_ops_saved_geomean"] >= 1.0


def test_sampled_tier_records_accuracy_and_speedup(tiny_report):
    by_name = {result.name: result for result in tiny_report.results}
    ff = by_name["ff/move_chain"]
    assert ff.ops == TINY.ff_max_ops
    sampled = by_name["sampled/move_chain"]
    assert sampled.ops == TINY.sampled_max_ops
    assert sampled.cycles and sampled.cycles > 0
    for key in ("ipc_full", "ipc_sampled", "ipc_ratio", "speedup", "windows"):
        assert sampled.detail[key] > 0, key
    summary = tiny_report.summary()
    assert summary["ff_ops_per_sec_geomean"] > 0
    assert summary["sampled_ipc_ratio_geomean"] > 0
    assert summary["sampled_speedup_geomean"] > 0


def test_suite_counts_real_work(tiny_report):
    by_name = {result.name: result for result in tiny_report.results}
    assert by_name["trace_gen/move_chain"].ops == TINY.max_ops
    sim = by_name["sim/baseline/move_chain"]
    assert sim.ops == TINY.max_ops          # committed micro-ops
    assert sim.cycles and sim.cycles > 0
    assert sim.detail["ipc"] > 0
    # Event-driven loop effectiveness is part of every sim case, so the
    # bench gate can compare cycles/s alongside the skip statistics.
    assert sim.detail["skipped_cycles"] >= 0
    assert 0 < sim.detail["events_per_cycle"] <= 1.0
    sweep = by_name["sweep/small"]
    assert sweep.ops == 2                   # baseline + one variant job
    assert sweep.detail["failures"] == 0


def test_fake_clock_makes_throughput_deterministic(tiny_report):
    again = run_benchmarks(TINY, clock=FakeClock())
    assert [r.to_dict() for r in again.results] \
        == [r.to_dict() for r in tiny_report.results]


def test_summary_metrics_present_and_positive(tiny_report):
    summary = tiny_report.summary()
    for key in ("trace_gen_ops_per_sec_geomean", "sim_ops_per_sec_geomean",
                "sim_cycles_per_sec_geomean", "sweep_jobs_per_sec"):
        assert summary[key] > 0, key


def test_paper_tier_times_the_smoke_pipeline():
    """The paper/smoke case records cells-per-second of the whole pipeline."""
    config = BenchConfig(workloads=("move_chain",), schemes=("baseline",),
                         max_ops=300, repeat=1, sweep=False, sampled=False,
                         long_workloads=(), farm_sweep=False, adaptive=False,
                         paper=True)
    report = run_benchmarks(config)
    by_name = {result.name: result for result in report.results}
    paper = by_name["paper/smoke"]
    assert paper.kind == "paper"
    assert paper.detail["figures"] == 3
    assert paper.detail["failures"] == 0
    assert paper.ops == paper.detail["cells"] > 0
    assert report.summary()["paper_cells_per_sec"] > 0


def test_progress_callback_sees_every_case():
    seen: list[str] = []
    run_benchmarks(TINY, clock=FakeClock(), progress=seen.append)
    assert len(seen) == len(run_benchmarks(TINY, clock=FakeClock()).results)


# -- report round trip ---------------------------------------------------------------


def test_report_json_roundtrip(tiny_report, tmp_path):
    path = tiny_report.save(tmp_path / "bench.json")
    loaded = BenchReport.load(path)
    assert loaded.summary() == tiny_report.summary()
    assert [r.to_dict() for r in loaded.results] \
        == [r.to_dict() for r in tiny_report.results]


def test_report_text_mentions_every_case(tiny_report):
    text = tiny_report.to_text()
    for result in tiny_report.results:
        assert result.name in text


# -- the smoke gate ------------------------------------------------------------------


def _report_with(sim_ops_per_sec: float) -> BenchReport:
    return BenchReport(results=[BenchResult(
        name="sim/isrb/move_chain", kind="sim",
        ops=1000, wall_seconds=1000 / sim_ops_per_sec, cycles=500)])


def test_compare_passes_within_tolerance():
    assert compare_reports(_report_with(80.0), _report_with(100.0),
                           tolerance=0.30) == []


def test_compare_flags_regression_beyond_tolerance():
    regressions = compare_reports(_report_with(60.0), _report_with(100.0),
                                  tolerance=0.30)
    assert len(regressions) >= 1
    assert any("sim_ops_per_sec_geomean" in message for message in regressions)


def test_compare_never_flags_improvements():
    assert compare_reports(_report_with(500.0), _report_with(100.0),
                           tolerance=0.0) == []


def test_compare_ignores_metrics_missing_from_either_side():
    empty = BenchReport()
    assert compare_reports(empty, _report_with(100.0)) == []
    assert compare_reports(_report_with(100.0), empty) == []


def test_compare_uses_shared_cases_not_whole_suite_averages():
    """A smoke subset is gated case-against-case, not against a full-suite
    geomean that a fast subset would beat even while regressing."""
    fast = BenchResult(name="sim/isrb/move_chain", kind="sim",
                       ops=1000, wall_seconds=10.0, cycles=500)     # 100/s
    slow = BenchResult(name="sim/isrb/load_load", kind="sim",
                       ops=1000, wall_seconds=100.0, cycles=500)    # 10/s
    baseline = BenchReport(results=[fast, slow])                    # geomean ~31.6/s
    regressed = BenchReport(results=[BenchResult(
        name="sim/isrb/move_chain", kind="sim",
        ops=1000, wall_seconds=20.0, cycles=500)])                  # 50/s: -50%
    # 50/s beats the whole-suite geomean, but is 50% below its own baseline
    # case -- the gate must flag it.
    assert compare_reports(regressed, baseline, tolerance=0.30)


def test_compare_validates_tolerance():
    with pytest.raises(ValueError, match="tolerance"):
        compare_reports(_report_with(1.0), _report_with(1.0), tolerance=1.5)


# -- CLI -----------------------------------------------------------------------------


def test_cli_bench_writes_artifact(tmp_path, capsys):
    out = tmp_path / "BENCH_core.json"
    code = main(["bench", "--workloads", "move_chain", "--schemes", "baseline",
                 *TINY_CLI, "--quiet", "--out", str(out)])
    assert code == 0
    data = json.loads(out.read_text())
    assert data["summary"]["sim_ops_per_sec_geomean"] > 0
    assert any(row["name"] == "sim/baseline/move_chain" for row in data["results"])
    assert "trace_gen/move_chain" in capsys.readouterr().out


def test_cli_bench_smoke_gate_detects_fast_baseline(tmp_path):
    """A baseline claiming absurd throughput must fail the smoke gate."""
    out = tmp_path / "bench.json"
    code = main(["bench", "--workloads", "move_chain", "--schemes", "baseline",
                 *TINY_CLI, "--quiet", "--out", str(out)])
    assert code == 0
    data = json.loads(out.read_text())
    for row in data["results"]:  # pretend the committed baseline was 1000x faster
        row["wall_seconds"] /= 1000.0
    impossible = tmp_path / "impossible.json"
    impossible.write_text(json.dumps(data))
    code = main(["bench", "--workloads", "move_chain", "--schemes", "baseline",
                 *TINY_CLI, "--quiet", "--out", "", "--baseline", str(impossible)])
    assert code == 1


def test_cli_bench_gate_passes_against_own_output(tmp_path):
    out = tmp_path / "bench.json"
    args = ["bench", "--workloads", "move_chain", "--schemes", "baseline",
            *TINY_CLI, "--quiet"]
    assert main([*args, "--out", str(out)]) == 0
    # Same machine, same suite, generous tolerance: must pass.
    assert main([*args, "--out", "", "--baseline", str(out),
                 "--tolerance", "0.9"]) == 0


def test_cli_bench_never_clobbers_the_baseline_it_gates_against(tmp_path, capsys):
    """`--out X --baseline X` must not overwrite X and then pass trivially."""
    args = ["bench", "--workloads", "move_chain", "--schemes", "baseline",
            *TINY_CLI, "--quiet"]
    baseline = tmp_path / "BENCH_core.json"
    assert main([*args, "--out", str(baseline)]) == 0
    # Make the committed baseline impossibly fast: the gate must FAIL even
    # when --out points at the very same file.
    data = json.loads(baseline.read_text())
    for row in data["results"]:
        row["wall_seconds"] /= 1000.0
    baseline.write_text(json.dumps(data))
    before = baseline.read_text()
    code = main([*args, "--out", str(baseline), "--baseline", str(baseline)])
    assert code == 1
    assert baseline.read_text() == before, "baseline artifact was overwritten"
    assert "not overwriting baseline" in capsys.readouterr().err


def test_cli_bench_check_compares_two_artifacts_without_running(tmp_path):
    args = ["bench", "--workloads", "move_chain", "--schemes", "baseline",
            *TINY_CLI, "--quiet"]
    head = tmp_path / "head.json"
    assert main([*args, "--out", str(head)]) == 0
    # Same artifact against itself: identical rates, gate passes.
    assert main(["bench", "--check", str(head), "--baseline", str(head)]) == 0
    # A 1000x-faster fabricated baseline: gate fails.
    data = json.loads(head.read_text())
    for row in data["results"]:
        row["wall_seconds"] /= 1000.0
    fast = tmp_path / "fast.json"
    fast.write_text(json.dumps(data))
    assert main(["bench", "--check", str(head), "--baseline", str(fast)]) == 1


def test_cli_bench_narrowed_run_skips_farm_tier(tmp_path, capsys):
    """Explicit --workloads/--max-ops must not pay for the fixed-scale farm."""
    out = tmp_path / "narrow.json"
    code = main(["bench", "--workloads", "move_chain", "--schemes", "baseline",
                 "--max-ops", "300", "--repeat", "1", "--no-sweep",
                 "--no-sampled", "--no-long", "--out", str(out)])
    assert code == 0
    captured = capsys.readouterr()
    assert "skip the fixed-scale sweep_farm, adaptive and paper tiers" \
        in captured.err
    data = json.loads(out.read_text())
    assert not any(row["kind"] in ("sweep_farm", "adaptive", "paper")
                   for row in data["results"])


def test_cli_bench_profile_prints_hotspots_and_never_saves(tmp_path, capsys):
    out = tmp_path / "profiled.json"
    code = main(["bench", "--workloads", "move_chain", "--schemes", "baseline",
                 *TINY_CLI, "--quiet", "--profile", "--out", str(out)])
    assert code == 0
    captured = capsys.readouterr()
    assert "cumulative" in captured.err        # pstats table went to stderr
    assert "not saved" in captured.err
    assert not out.exists(), "profiler-inflated timings must never be saved"


def test_cli_bench_check_requires_baseline(capsys):
    assert main(["bench", "--check", "whatever.json"]) == 2
    assert "--check requires --baseline" in capsys.readouterr().err


def test_cli_bench_rejects_unknown_workload(capsys):
    code = main(["bench", "--workloads", "nope", "--quiet", "--out", ""])
    assert code == 2
    assert "unknown workload" in capsys.readouterr().err
