"""Shared fixtures for the suite.

The tiny sweep grids and the lease-test clock used to be duplicated per
module (test_faults.py, test_paper.py and test_determinism.py each grew
their own copies); they are consolidated here so every suite exercises
the *same* grids and a golden artifact stays pinned to one definition.
"""

from __future__ import annotations

import pytest

from repro.experiments.grid import SweepSpec

#: One cell -- the cheapest real simulation the harness can run.
TINY_SPEC = SweepSpec(schemes=("isrb",), workloads=("move_chain",),
                      max_ops=800)

#: Two cells across two workloads -- the chaos suite's sweep.
CHAOS_SPEC = SweepSpec(schemes=("isrb",),
                       workloads=("move_chain", "spill_reload"), max_ops=800)


class FakeClock:
    """A manually-advanced clock for lease-TTL tests (no sleeps)."""

    def __init__(self, now: float = 1_000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def fake_clock() -> FakeClock:
    return FakeClock()


@pytest.fixture(scope="session")
def tiny_spec() -> SweepSpec:
    return TINY_SPEC


@pytest.fixture()
def tiny_jobs():
    """The expanded job list of :data:`TINY_SPEC` (a single cell)."""
    return TINY_SPEC.expand()


@pytest.fixture(scope="session")
def chaos_spec() -> SweepSpec:
    return CHAOS_SPEC


@pytest.fixture(scope="session")
def small_spec() -> SweepSpec:
    """Two schemes x two workloads -- the determinism suite's golden grid."""
    return SweepSpec(
        schemes=("isrb", "refcount_checkpoint"),
        workloads=("spill_reload", "move_chain"),
        max_ops=2_000,
        seed=1,
    )
