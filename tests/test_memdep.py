"""Unit tests for the Store Sets memory-dependence predictor.

The training rules under test are the original proposal's assignment
rules: a violating load/store pair with no sets allocates a fresh SSID for
both; a pair where exactly one has a set pulls the other into it; a pair
with two different sets merges towards the smaller SSID.
"""

from __future__ import annotations

import pytest

from repro.memdep.store_sets import StoreSetsConfig, StoreSetsPredictor

LOAD_PC = 0x100
STORE_PC = 0x200


def test_unknown_load_predicted_independent():
    predictor = StoreSetsPredictor()
    assert predictor.lookup_load(LOAD_PC) is None
    assert predictor.dependencies_predicted == 0


def test_violation_creates_shared_set_and_dependence():
    predictor = StoreSetsPredictor()
    predictor.train_violation(LOAD_PC, STORE_PC)
    assert predictor.violations_trained == 1
    # Both pcs now share SSID 0 (the first allocated identifier).
    assert predictor._ssit[predictor._ssit_index(LOAD_PC)] == 0
    assert predictor._ssit[predictor._ssit_index(STORE_PC)] == 0
    # A renamed store of the set is returned to subsequent loads...
    predictor.store_renamed(STORE_PC, store_seq=7)
    assert predictor.lookup_load(LOAD_PC) == 7
    assert predictor.dependencies_predicted == 1
    # ...until it completes and leaves the LFST.
    predictor.store_completed(STORE_PC, store_seq=7)
    assert predictor.lookup_load(LOAD_PC) is None


def test_same_set_stores_are_serialised():
    predictor = StoreSetsPredictor()
    predictor.train_violation(LOAD_PC, STORE_PC)
    assert predictor.store_renamed(STORE_PC, store_seq=10) is None
    # The second store of the set must not bypass the first.
    assert predictor.store_renamed(STORE_PC, store_seq=12) == 10
    assert predictor.lookup_load(LOAD_PC) == 12


def test_stale_store_completion_keeps_newer_lfst_entry():
    predictor = StoreSetsPredictor()
    predictor.train_violation(LOAD_PC, STORE_PC)
    predictor.store_renamed(STORE_PC, store_seq=10)
    predictor.store_renamed(STORE_PC, store_seq=12)
    predictor.store_completed(STORE_PC, store_seq=10)   # stale: 12 is current
    assert predictor.lookup_load(LOAD_PC) == 12


def test_assignment_rules_join_and_merge():
    predictor = StoreSetsPredictor()
    a_load, b_store = 0x100, 0x200
    c_load, d_load, e_store = 0x300, 0x400, 0x500

    predictor.train_violation(a_load, b_store)          # fresh set: SSID 0
    predictor.train_violation(c_load, b_store)          # c joins b's set
    assert predictor._ssit[predictor._ssit_index(c_load)] == 0

    predictor.train_violation(d_load, e_store)          # fresh set: SSID 1
    assert predictor._ssit[predictor._ssit_index(d_load)] == 1

    predictor.train_violation(d_load, b_store)          # merge: min(1, 0) wins
    assert predictor._ssit[predictor._ssit_index(d_load)] == 0
    assert predictor._ssit[predictor._ssit_index(b_store)] == 0


def test_cyclic_clearing_dissolves_stale_sets():
    predictor = StoreSetsPredictor(StoreSetsConfig(clear_interval=5))
    predictor.train_violation(LOAD_PC, STORE_PC)        # training does not tick
    predictor.store_renamed(STORE_PC, store_seq=3)
    for _ in range(4):
        predictor.lookup_load(LOAD_PC)                  # 5th access clears
    assert predictor._ssit == {}
    assert predictor.lookup_load(LOAD_PC) is None


def test_config_validation():
    with pytest.raises(ValueError):
        StoreSetsConfig(ssit_entries=0)
    with pytest.raises(ValueError):
        StoreSetsConfig(clear_interval=0)


def test_snapshot_drops_lfst_but_keeps_sets():
    predictor = StoreSetsPredictor()
    predictor.train_violation(LOAD_PC, STORE_PC)
    predictor.store_renamed(STORE_PC, store_seq=42)     # in-flight store
    restored = StoreSetsPredictor()
    restored.restore_snapshot(predictor.to_snapshot())
    # The set survives; the in-flight store (window-local seq) does not.
    assert restored._ssit == predictor._ssit
    assert restored.lookup_load(LOAD_PC) is None
    # The SSID allocator continues where it left off.
    restored.train_violation(0x600, 0x700)
    assert restored._ssit[restored._ssit_index(0x600)] == 1
