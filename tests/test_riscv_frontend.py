"""RV32I frontend: assembler, loader and lowering semantics.

The heart of this file is a mini reference RV32I interpreter, written
directly against the ISA semantics (32-bit registers, byte memory, real
program counters).  Directed and random programs are assembled, run through
the reference, and run through the lowering pipeline (decode -> micro-ops
-> Executor); all 32 architectural x-registers and every touched memory
byte must agree.  The lowerer's register-bank mapping, 32-bit masking
discipline, sub-word memory cracking and control-flow translation can only
pass by being semantically right.
"""

from __future__ import annotations

import random
import struct
from pathlib import Path

import pytest

from repro.isa.executor import Executor
from repro.isa.opcodes import Opcode
from repro.isa.registers import int_reg
from repro.isa.riscv import (
    AsmError,
    LoaderError,
    LoweringError,
    assemble,
    decode,
    load_binary,
    lower,
    lower_image,
)
from repro.isa.riscv.lower import REG_BANK_BASE, STACK_TOP

REPO_ROOT = Path(__file__).resolve().parents[1]
SAMPLE_BIN = REPO_ROOT / "examples" / "rv32i" / "checksum.bin"
SAMPLE_ASM = REPO_ROOT / "examples" / "rv32i" / "checksum.s"

_MASK32 = 0xFFFFFFFF


def _s32(value: int) -> int:
    return value - (1 << 32) if value & 0x8000_0000 else value


class RefCore:
    """A direct RV32I interpreter: 32 registers, byte memory, real PCs.

    Shares only the (conformance-tested) decoder with the lowering path;
    the semantics are written out independently, so agreement between this
    and the lowered micro-op execution is a genuine differential check.
    """

    def __init__(self, binary, sp: int = STACK_TOP) -> None:
        self.x = [0] * 32
        self.x[2] = sp & _MASK32
        self.mem = dict(binary.memory)
        self.pc = binary.entry
        self.halted = False

    def _load(self, addr: int, size: int) -> int:
        return sum(self.mem.get((addr + i) & _MASK32, 0) << (8 * i)
                   for i in range(size))

    def _store(self, addr: int, value: int, size: int) -> None:
        for i in range(size):
            self.mem[(addr + i) & _MASK32] = (value >> (8 * i)) & 0xFF

    def step(self) -> None:
        insn = decode(self._load(self.pc, 4))
        m, imm, pc = insn.mnemonic, insn.imm, self.pc
        a, c = self.x[insn.rs1], self.x[insn.rs2]
        nxt = pc + 4

        def w(value: int) -> None:
            if insn.rd:
                self.x[insn.rd] = value & _MASK32

        if m == "add":
            w(a + c)
        elif m == "sub":
            w(a - c)
        elif m == "sll":
            w(a << (c & 31))
        elif m == "slt":
            w(int(_s32(a) < _s32(c)))
        elif m == "sltu":
            w(int(a < c))
        elif m == "xor":
            w(a ^ c)
        elif m == "srl":
            w(a >> (c & 31))
        elif m == "sra":
            w(_s32(a) >> (c & 31))
        elif m == "or":
            w(a | c)
        elif m == "and":
            w(a & c)
        elif m == "addi":
            w(a + imm)
        elif m == "slti":
            w(int(_s32(a) < imm))
        elif m == "sltiu":
            w(int(a < (imm & _MASK32)))
        elif m == "xori":
            w(a ^ (imm & _MASK32))
        elif m == "ori":
            w(a | (imm & _MASK32))
        elif m == "andi":
            w(a & (imm & _MASK32))
        elif m == "slli":
            w(a << imm)
        elif m == "srli":
            w(a >> imm)
        elif m == "srai":
            w(_s32(a) >> imm)
        elif m in ("lb", "lh", "lw", "lbu", "lhu"):
            size = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[m]
            value = self._load((a + imm) & _MASK32, size)
            if m in ("lb", "lh"):
                sign = 1 << (8 * size - 1)
                value = (value ^ sign) - sign
            w(value)
        elif m in ("sb", "sh", "sw"):
            size = {"sb": 1, "sh": 2, "sw": 4}[m]
            self._store((a + imm) & _MASK32, c, size)
        elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken = {"beq": a == c, "bne": a != c,
                     "blt": _s32(a) < _s32(c), "bge": _s32(a) >= _s32(c),
                     "bltu": a < c, "bgeu": a >= c}[m]
            if taken:
                nxt = pc + imm
        elif m == "jal":
            w(pc + 4)
            nxt = pc + imm
        elif m == "jalr":
            nxt = (a + imm) & ~1
            w(pc + 4)
        elif m == "lui":
            w(imm)
        elif m == "auipc":
            w(pc + imm)
        elif m in ("ecall", "ebreak"):
            self.halted = True
        elif m in ("fence", "fence.i"):
            pass
        else:  # pragma: no cover
            raise AssertionError(f"reference has no semantics for {m}")
        self.pc = nxt & _MASK32

    def run(self, max_insns: int) -> int:
        steps = 0
        while not self.halted and steps < max_insns:
            self.step()
            steps += 1
        return steps


def _run_lowered(blob: bytes, max_uops: int):
    image = lower_image(blob)
    executor = Executor(image.program, initial_regs=image.initial_regs,
                        initial_memory=image.initial_memory)
    trace = executor.run(max_ops=max_uops)
    return executor, trace


def _assert_same_state(source: str, max_insns: int = 20_000) -> None:
    """Assemble, run through the reference and the lowering path, compare."""
    blob = assemble(source)
    ref = RefCore(load_binary(blob))
    steps = ref.run(max_insns)
    assert ref.halted, f"reference did not reach ecall in {steps} instructions"

    max_uops = 24 * steps + 64    # every RV32I insn cracks to < 24 micro-ops
    executor, trace = _run_lowered(blob, max_uops)
    assert len(trace) < max_uops, "lowered execution did not reach HALT"

    assert executor.read_reg(int_reg(0)) == 0, "x0 must stay zero"
    for xreg in range(1, 13):
        assert executor.read_reg(int_reg(xreg)) == ref.x[xreg], f"x{xreg}"
    for xreg in range(13, 32):
        banked = executor.read_memory(REG_BANK_BASE + 4 * xreg, 4)
        assert banked == ref.x[xreg], f"x{xreg} (register bank)"

    addresses = {addr for addr in ref.mem if addr <= _MASK32}
    addresses |= {addr for addr in executor._memory if addr < REG_BANK_BASE}
    for addr in sorted(addresses):
        assert executor.read_memory(addr, 1) == ref.mem.get(addr, 0), hex(addr)


# -- directed differential programs --------------------------------------------------


def test_arithmetic_and_compares_on_signed_boundaries():
    _assert_same_state("""
        li   t0, 0x7fffffff
        li   t1, -2147483648
        add  t2, t0, t1          # overflow wraps
        sub  a0, t1, t0
        slt  a1, t1, t0          # signed: INT_MIN < INT_MAX
        sltu a2, t1, t0          # unsigned: 0x80000000 > 0x7fffffff
        slti a3, t1, -1
        sltiu a4, t0, -1         # imm sign-extends to 0xffffffff unsigned
        xor  a5, t0, t1
        or   a6, t0, t1
        and  a7, t0, t1
        seqz s2, zero
        snez s3, t0
        not  s4, zero
        neg  s5, t0
        ecall
    """)


def test_shifts_including_arithmetic_right_of_negative():
    _assert_same_state("""
        li   t0, -8
        srai t1, t0, 1           # sign bits shift in
        srai t2, t0, 31
        srli a0, t0, 1           # logical: zeros shift in
        slli a1, t0, 4           # shift left wraps at 32 bits
        li   a2, 35              # dynamic shift amounts use amount & 31
        sll  a3, t0, a2
        srl  a4, t0, a2
        sra  a5, t0, a2
        sll  a6, t0, zero
        ecall
    """)


def test_register_bank_x13_to_x31_round_trips():
    """The memory-banked upper registers behave exactly like registers."""
    lines = [f"    li x{xreg}, {xreg * 1000 + 7}" for xreg in range(13, 32)]
    lines += [f"    add x{xreg}, x{xreg}, x{xreg + 1}" for xreg in range(13, 31)]
    lines += ["    add x5, x13, x31", "    sub x31, x31, x5", "    ecall"]
    _assert_same_state("\n".join(lines))


def test_subword_loads_and_stores():
    _assert_same_state("""
        la   t0, data
        lb   a0, 0(t0)           # 0xF0 sign-extends negative
        lbu  a1, 0(t0)
        lh   a2, 0(t0)           # 0xBEF0 sign-extends negative
        lhu  a3, 0(t0)
        lw   a4, 0(t0)
        lb   a5, 3(t0)           # high byte of the word
        lh   a6, 2(t0)
        sb   a0, 4(t0)           # read-modify-write the second word
        sh   a2, 6(t0)
        lw   a7, 4(t0)
        sb   t1, 8(t0)           # store zero over 0xFF bytes
        sh   t1, 10(t0)
        lw   s2, 8(t0)
        ecall
    data:
        .word 0xdeadbef0, 0x11223344, 0xffffffff
    """)


def test_branches_taken_and_not_taken_all_six():
    _assert_same_state("""
        li   t0, 0x80000000      # negative as signed, huge as unsigned
        li   t1, 1
        li   a0, 0
        beq  t0, t1, skip1
        addi a0, a0, 1           # executed: not equal
    skip1:
        bne  t0, t1, skip2
        addi a0, a0, 100         # skipped
    skip2:
        blt  t0, t1, skip3       # taken: signed INT_MIN < 1
        addi a0, a0, 100
    skip3:
        bltu t0, t1, skip4       # not taken: unsigned huge > 1
        addi a0, a0, 2
    skip4:
        bge  t1, t0, skip5       # taken (signed)
        addi a0, a0, 100
    skip5:
        bgeu t1, t0, skip6       # not taken (unsigned)
        addi a0, a0, 4
    skip6:
        li   t2, 3               # backward branch: a small counted loop
    back:
        addi a0, a0, 10
        addi t2, t2, -1
        bnez t2, back
        ecall
    """)


def test_calls_returns_and_link_registers():
    _assert_same_state("""
        li   sp, 0x10000
        li   a0, 5
        jal  ra, double          # call through x1
        jal  s2, cont            # link register other than ra (falls through)
    cont:
        mv   s3, s2              # observe the alternate link value
        jal  ra, nested
        ecall
    double:
        add  a0, a0, a0
        ret
    nested:                      # two-level call: RAS must nest
        addi sp, sp, -4
        sw   ra, 0(sp)
        jal  ra, double
        lw   ra, 0(sp)
        addi sp, sp, 4
        jalr x0, 0(ra)           # explicit return form
    """)


def test_lui_auipc_li_la_address_materialisation():
    _assert_same_state("""
        lui  t0, 0x12345
        lui  t1, 0xfffff
        auipc t2, 0
        auipc t3, 0x1000
        li   a0, 0x7ffff800      # li with a low half that sign-extends
        li   a1, -1
        li   a2, 2047
        li   a3, -2048
        la   a4, target
        la   a5, data
        lw   a6, 0(a5)
        ecall
    target:
        nop
    data:
        .word 0xcafef00d
    """)


def test_data_words_interleaved_with_text_are_jumped_over():
    _assert_same_state("""
        j    start
        .word 0xffffffff, 0x00000000
    start:
        li   a0, 42
        ecall
    """)


def test_writes_to_x0_are_discarded_but_side_effects_happen():
    _assert_same_state("""
        la   t0, data
        li   t1, 7
        add  x0, t1, t1          # discarded
        lw   x0, 0(t0)           # load still happens, result discarded
        addi x0, x0, 99          # canonical form reads x0 as 0
        add  a0, x0, t1          # x0 still reads as zero
        ecall
    data:
        .word 123
    """)


# -- random straight-line property ---------------------------------------------------

_ALU_R = ("add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and")
_ALU_I = ("addi", "slti", "sltiu", "xori", "ori", "andi")
_SHIFT_I = ("slli", "srli", "srai")
_SEED_VALUES = (0, 1, -1, 0x7FFFFFFF, -0x80000000, 0x55555555, -0x55555556)


def _random_alu_source(seed: int) -> str:
    rng = random.Random(seed)
    lines = [f"    li x{xreg}, "
             f"{rng.choice(_SEED_VALUES + (rng.randrange(-2048, 2048),))}"
             for xreg in range(1, 32)]
    for _ in range(80):
        rd = rng.randrange(1, 32)
        rs1, rs2 = rng.randrange(32), rng.randrange(32)
        kind = rng.random()
        if kind < 0.5:
            lines.append(f"    {rng.choice(_ALU_R)} x{rd}, x{rs1}, x{rs2}")
        elif kind < 0.8:
            lines.append(f"    {rng.choice(_ALU_I)} x{rd}, x{rs1}, "
                         f"{rng.randrange(-2048, 2048)}")
        else:
            lines.append(f"    {rng.choice(_SHIFT_I)} x{rd}, x{rs1}, "
                         f"{rng.randrange(32)}")
    lines.append("    ecall")
    return "\n".join(lines)


@pytest.mark.parametrize("seed", (3, 17, 29, 53, 71, 97))
def test_random_alu_programs_match_reference(seed):
    """Random ALU/compare/shift soups over all 32 registers agree exactly."""
    _assert_same_state(_random_alu_source(seed))


# -- the loader ----------------------------------------------------------------------


def test_flat_loader_places_text_at_base():
    blob = assemble("li a0, 9\necall")
    binary = load_binary(blob, base=0x2000)
    assert binary.text_base == binary.entry == 0x2000
    assert binary.text == blob
    assert binary.memory[0x2000] == blob[0]


def test_flat_loader_rejects_empty_and_misaligned():
    with pytest.raises(LoaderError, match="empty"):
        load_binary(b"")
    with pytest.raises(LoaderError, match="multiple of 4"):
        load_binary(b"\x13\x00\x00")
    with pytest.raises(LoaderError, match="aligned"):
        load_binary(assemble("ecall"), base=0x1002)


def test_loader_reports_unreadable_path(tmp_path):
    with pytest.raises(LoaderError, match="cannot read"):
        load_binary(tmp_path / "nope.bin")


def _make_elf(segments, entry, machine=243, ei_class=1):
    """Build a minimal ELF32 from (vaddr, data, memsz) segments."""
    phoff, phentsize = 52, 32
    data_offset = phoff + phentsize * len(segments)
    phdrs, body, offset = b"", b"", data_offset
    for vaddr, data, memsz in segments:
        phdrs += struct.pack("<IIIIIIII", 1, offset, vaddr, vaddr,
                             len(data), memsz, 5, 4)
        body += data
        offset += len(data)
    ident = b"\x7fELF" + bytes([ei_class, 1, 1, 0]) + b"\x00" * 8
    header = ident + struct.pack("<HHIIIIIHHHHHH", 2, machine, 1, entry,
                                 phoff, 0, 0, 52, phentsize, len(segments),
                                 0, 0, 0)
    return header + phdrs + body


def test_elf_loader_places_segments_and_zero_fills():
    text = assemble("la t0, 0x20000\nlw a0, 0(t0)\nlw a1, 4(t0)\necall",
                    base=0x10000)
    data = struct.pack("<I", 0xABCD1234)
    blob = _make_elf([(0x10000, text, len(text)),
                      (0x20000, data, 16)],            # memsz > filesz
                     entry=0x10000)
    binary = load_binary(blob)
    assert binary.text_base == 0x10000
    assert binary.memory[0x20000] == 0x34
    assert binary.memory[0x20004] == 0            # zero-filled tail

    ref = RefCore(binary)
    ref.run(50)
    assert ref.halted and ref.x[10] == 0xABCD1234 and ref.x[11] == 0

    executor, _ = _run_lowered(blob, 400)
    assert executor.read_reg(int_reg(10)) == 0xABCD1234
    assert executor.read_reg(int_reg(11)) == 0


def test_elf_loader_honours_nonzero_entry():
    # The first instruction would poison a0 if the prologue jump to the
    # real entry point were missing.
    text = assemble("li a0, 99\nli a0, 7\necall", base=0x10000)
    blob = _make_elf([(0x10000, text, len(text))], entry=0x10004)
    binary = load_binary(blob)
    assert binary.entry == 0x10004

    executor, _ = _run_lowered(blob, 100)
    assert executor.read_reg(int_reg(10)) == 7


def test_elf_loader_rejects_bad_images():
    text = assemble("ecall", base=0x1000)
    with pytest.raises(LoaderError, match="not RISC-V"):
        load_binary(_make_elf([(0x1000, text, 4)], entry=0x1000, machine=62))
    with pytest.raises(LoaderError, match="ELF32 little-endian"):
        load_binary(_make_elf([(0x1000, text, 4)], entry=0x1000, ei_class=2))
    with pytest.raises(LoaderError, match="contains the entry"):
        load_binary(_make_elf([(0x1000, text, 4)], entry=0x8000))
    with pytest.raises(LoaderError, match="truncated"):
        load_binary(b"\x7fELF" + b"\x00" * 20)
    with pytest.raises(LoaderError, match="no program headers"):
        load_binary(_make_elf([], entry=0x1000))


# -- the assembler -------------------------------------------------------------------


def test_assembler_li_expands_to_one_or_two_words():
    assert len(assemble("li a0, 2047")) == 4
    assert len(assemble("li a0, -2048")) == 4
    assert len(assemble("li a0, 2048")) == 8
    assert len(assemble("li a0, 0xdeadbeef")) == 8


def test_assembler_errors_carry_line_numbers():
    with pytest.raises(AsmError, match="line 2.*unknown mnemonic"):
        assemble("nop\nfrobnicate a0")
    with pytest.raises(AsmError, match="unknown register"):
        assemble("add a0, q7, a1")
    with pytest.raises(AsmError, match="defined twice"):
        assemble("x:\nnop\nx:\nnop")
    with pytest.raises(AsmError, match="expected imm"):
        assemble("lw a0, a1")
    with pytest.raises(AsmError, match=".zero size"):
        assemble(".zero 3")
    with pytest.raises(AsmError, match="bad integer"):
        assemble(".word banana")


def test_assembler_rejects_out_of_range_branch():
    # A branch across > 4 KiB of .zero padding exceeds the B-type range.
    with pytest.raises(AsmError, match="outside"):
        assemble("beq a0, a1, far\n.zero 8192\nfar:\nnop")


def test_checked_in_sample_binary_matches_its_source():
    """checksum.bin is exactly what checksum.s assembles to."""
    assert assemble(SAMPLE_ASM.read_text()) == SAMPLE_BIN.read_bytes()


# -- lowering specifics --------------------------------------------------------------


def test_indirect_jalr_raises_lowering_error():
    blob = assemble("jalr a0, 8(a1)\necall")
    with pytest.raises(LoweringError, match="indirect"):
        lower(load_binary(blob))


def test_call_pseudo_op_is_rejected_as_indirect():
    # `call` expands to auipc+jalr ra: a genuinely indirect jump the
    # micro-op ISA cannot express.  `jal ra, label` is the supported form.
    blob = assemble("call somewhere\nsomewhere:\necall")
    with pytest.raises(LoweringError, match="indirect"):
        lower(load_binary(blob))


def test_return_through_any_register_lowers_to_ret():
    blob = assemble("jal t0, fn\necall\nfn:\njalr x0, 0(t0)")
    program = lower(load_binary(blob))
    assert any(insn.opcode is Opcode.RET for insn in program.instructions)


def test_mv_lowers_to_eliminable_mov():
    program = lower(load_binary(assemble("mv a0, a1\necall")))
    movs = [insn for insn in program.instructions if insn.opcode is Opcode.MOV]
    assert movs, "mv must lower to a full-width MOV (move-elimination bait)"


def test_branch_target_outside_text_halts_cleanly():
    # A hand-encoded branch whose target is far outside the text segment
    # lowers to the __exit trampoline instead of a dangling label.
    from repro.isa.riscv import encode

    blob = (encode("beq", rs1=0, rs2=0, imm=2048).to_bytes(4, "little")
            + encode("ecall").to_bytes(4, "little"))
    executor, trace = _run_lowered(blob, 100)
    assert len(trace) < 100    # reached HALT, no runaway


def test_sample_binary_runs_end_to_end():
    """The checked-in sample commits real work through the full pipeline."""
    from repro.pipeline.config import CoreConfig
    from repro.pipeline.core import simulate_trace
    from repro.workloads import generate_trace

    name = f"riscv:{SAMPLE_BIN}"
    trace = generate_trace(name, max_ops=5_000, seed=1)
    assert len(trace) == 5_000

    baseline = simulate_trace(trace, CoreConfig())
    shared = simulate_trace(trace, CoreConfig()
                            .with_tracker("isrb", entries=32, counter_bits=3)
                            .with_move_elimination().with_smb())
    assert baseline.instructions == shared.instructions == 5_000
    assert shared.stat("committed_eliminated_moves") > 0, (
        "the sample's mv-chain must produce eliminated moves")
    assert baseline.stat("committed_loads") == shared.stat("committed_loads")
