"""Trace-cache hit/miss, persistence and provider-hook tests."""

from repro.experiments.cache import TraceCache
from repro.workloads import clear_trace_provider, generate_trace


def test_miss_then_hit(tmp_path):
    cache = TraceCache(tmp_path)
    assert cache.get("move_chain", 500, 1) is None
    assert cache.stats.misses == 1

    trace = cache.get_or_generate("move_chain", 500, 1)
    assert len(trace) == 500
    assert cache.stats.generated == 1

    again = cache.get("move_chain", 500, 1)
    assert again is not None
    assert cache.stats.hits == 1
    assert [op.seq for op in again] == [op.seq for op in trace]


def test_persists_across_instances(tmp_path):
    TraceCache(tmp_path).get_or_generate("spill_reload", 400, 1)
    fresh = TraceCache(tmp_path)
    assert fresh.get("spill_reload", 400, 1) is not None
    assert fresh.stats.hits == 1
    assert fresh.stats.generated == 0


def test_keys_distinguish_workload_ops_and_seed(tmp_path):
    cache = TraceCache(tmp_path)
    cache.get_or_generate("move_chain", 400, 1)
    assert cache.get("move_chain", 400, 2) is None
    assert cache.get("move_chain", 500, 1) is None
    assert cache.get("spill_reload", 400, 1) is None


def test_corrupt_file_counts_invalid_and_regenerates(tmp_path):
    cache = TraceCache(tmp_path)
    cache.get_or_generate("move_chain", 300, 1)
    cache.path("move_chain", 300, 1).write_bytes(b"not a pickle")
    trace = cache.get_or_generate("move_chain", 300, 1)
    assert len(trace) == 300
    assert cache.stats.invalid == 1
    assert cache.stats.generated == 2


def test_warm_generates_each_distinct_trace_once(tmp_path):
    cache = TraceCache(tmp_path)
    keys = [("move_chain", 300, 1), ("spill_reload", 300, 1),
            ("move_chain", 300, 1), ("move_chain", 300, 1)]
    generated, reused = cache.warm(keys)
    assert (generated, reused) == (2, 0)
    # A second warm of the same keys reuses everything.
    generated, reused = TraceCache(tmp_path).warm(keys)
    assert (generated, reused) == (0, 2)


def test_installed_cache_intercepts_generate_trace(tmp_path):
    cache = TraceCache(tmp_path)
    try:
        with cache:
            first = generate_trace("move_chain", max_ops=300, seed=1)
            second = generate_trace("move_chain", max_ops=300, seed=1)
        assert cache.stats.generated == 1
        assert cache.stats.hits == 1
        assert [op.pc for op in first] == [op.pc for op in second]
        # After uninstall the executor runs directly again (no new stats).
        generate_trace("move_chain", max_ops=300, seed=1)
        assert cache.stats.generated == 1
    finally:
        clear_trace_provider()
