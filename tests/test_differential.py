"""Differential test layer: all tracker schemes, one committed truth.

Register-sharing schemes may only change *when* work happens (cycles),
never *what* the program computes.  The tests here pin that contract from
three directions:

* every scheme commits exactly the trace (same committed micro-op count,
  same commit-side event counts);
* the functional executor's final architectural register/memory state is
  deterministic and matches a committed golden digest, so a hot-path
  "optimisation" that changes semantics fails loudly;
* cycle counts are the *only* thing allowed to differ between schemes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.grid import SCHEME_PRESETS
from repro.isa.executor import Executor
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate_trace
from repro.workloads import build_workload, generate_trace, list_workloads

MAX_OPS = 2_000
SEED = 1
GOLDEN_PATH = Path(__file__).parent / "golden" / "state_digests.json"

#: Commit-side counters that must not depend on the tracker scheme: they
#: count architectural events of the committed instruction stream.  (Fetch
#: -side counters such as ``conditional_branches`` are *not* invariant: a
#: commit-stage trap refetches the trap-younger ops, and how many times
#: that happens is scheme-dependent timing.)
COMMIT_INVARIANT_STATS = ("committed_loads",)


def _scheme_configs() -> dict[str, CoreConfig]:
    """Baseline plus every tracker scheme at its preset sizing (ME + SMB on)."""
    configs = {"baseline": CoreConfig()}
    for name, preset in SCHEME_PRESETS.items():
        configs[name] = (CoreConfig()
                         .with_tracker(scheme=preset["scheme"],
                                       entries=preset["entries"],
                                       counter_bits=preset["counter_bits"])
                         .with_move_elimination()
                         .with_smb())
    return configs


def _final_digest(workload: str) -> str:
    """Functionally execute a workload and digest the final machine state."""
    image = build_workload(workload, seed=SEED)
    executor = Executor(image.program, initial_regs=image.initial_regs,
                        initial_memory=image.initial_memory)
    executor.run(max_ops=MAX_OPS)
    return executor.state_digest()


@pytest.fixture(scope="module")
def golden_digests() -> dict[str, str]:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("workload", list_workloads())
def test_all_schemes_commit_identical_state(workload):
    """Every scheme commits the full trace with identical commit-side counts."""
    trace = generate_trace(workload, max_ops=MAX_OPS, seed=SEED)
    results = {name: simulate_trace(trace, config)
               for name, config in _scheme_configs().items()}

    reference = results["baseline"]
    assert reference.instructions == len(trace)
    for name, result in results.items():
        assert result.instructions == reference.instructions, (
            f"{workload}: scheme {name} committed {result.instructions} micro-ops, "
            f"baseline committed {reference.instructions}")
        for stat in COMMIT_INVARIANT_STATS:
            assert result.stat(stat) == reference.stat(stat), (
                f"{workload}: scheme {name} disagrees with baseline on {stat}")
        # Sanity: the simulation made progress and terminated by committing
        # everything, not by tripping the deadlock guard.
        assert result.cycles > 0


#: Simulator-strategy statistics that legitimately differ between the
#: event-driven and the per-cycle walk; everything else must be identical.
_SKIP_STATS = frozenset({"skipped_cycles", "events_per_cycle"})


@pytest.mark.parametrize("workload", list_workloads())
def test_cycle_skipping_is_bit_identical(workload):
    """Event-driven cycle skipping on vs off: same cycles, counters, state.

    Covers every workload x every scheme (plus the no-sharing baseline).
    The comparison is total: cycle count, every statistic except the skip
    bookkeeping itself, and the SHA-256 digest of the full
    micro-architectural snapshot after the run -- so skipping can never
    silently jump over a cycle in which any stage could have acted.
    """
    from repro.pipeline.core import Core

    trace = generate_trace(workload, max_ops=MAX_OPS, seed=SEED)
    for name, config in _scheme_configs().items():
        skipping = Core(config.replace(cycle_skipping=True))
        walking = Core(config.replace(cycle_skipping=False))
        fast = skipping.run(trace)
        slow = walking.run(trace)
        assert fast.cycles == slow.cycles, (
            f"{workload}/{name}: event-driven loop changed the cycle count")
        assert fast.instructions == slow.instructions
        fast_stats = {k: v for k, v in fast.stats.items() if k not in _SKIP_STATS}
        slow_stats = {k: v for k, v in slow.stats.items() if k not in _SKIP_STATS}
        assert fast_stats == slow_stats, (
            f"{workload}/{name}: counters diverge between skip modes")
        assert skipping.snapshot().digest() == walking.snapshot().digest(), (
            f"{workload}/{name}: micro-architectural state diverges")


@pytest.mark.parametrize("workload", list_workloads())
def test_functional_state_is_deterministic(workload):
    """Two functional executions produce bit-identical architectural state."""
    assert _final_digest(workload) == _final_digest(workload)


@pytest.mark.parametrize("workload", list_workloads())
def test_functional_state_matches_golden(workload, golden_digests):
    """The final architectural state matches the committed golden digest.

    Regenerate with ``python tests/golden/regenerate.py`` -- but only when
    a workload's *program* intentionally changed.  An unintentional digest
    change means an optimisation altered functional semantics.
    """
    assert workload in golden_digests, (
        f"no golden digest for {workload}; run tests/golden/regenerate.py")
    assert _final_digest(workload) == golden_digests[workload]


@pytest.mark.parametrize("workload", list_workloads())
def test_functional_core_matches_golden(workload, golden_digests):
    """The compiled fast-forward core retires the exact Executor semantics.

    ``FunctionalCore.fast_forward`` runs per-opcode compiled closures
    instead of the handler table; its final architectural state must match
    the committed golden digest bit for bit, including when the run is
    interrupted by a snapshot/restore in the middle (the tentpole's
    "snapshot -> restore -> resume equals an uninterrupted run" property,
    at the architectural layer).
    """
    from repro.isa.functional import FunctionalCore

    image = build_workload(workload, seed=SEED)
    straight = FunctionalCore.from_image(image)
    straight.fast_forward(MAX_OPS)
    assert straight.state_digest() == golden_digests[workload]

    interrupted = FunctionalCore.from_image(image)
    interrupted.fast_forward(MAX_OPS // 3)
    resumed = FunctionalCore.from_snapshot(image.program,
                                           interrupted.to_snapshot())
    resumed.fast_forward(MAX_OPS - MAX_OPS // 3)
    assert resumed.state_digest() == golden_digests[workload]


# ---------------------------------------------------------------------------
# Sampled vs. full-detail differential
# ---------------------------------------------------------------------------

#: Documented small-scale tolerance for the sampled-vs-full IPC ratio.  At
#: unit-test scale (4000 micro-ops, 4 windows) the central-limit averaging
#: that sampled simulation relies on barely gets started, so individual
#: (workload, scheme) cells may be off by up to ~15% on phase-heavy
#: workloads; the committed BENCH_core.json pins the production-scale
#: figure (geomean within a few percent at 20k+ ops, 20+ windows).
SAMPLED_TOLERANCE = 0.20

_SAMPLING_KWARGS = dict(period=1_021, window=400, warmup=300, cooldown=200)

#: Representative configurations for the per-workload axis: the no-sharing
#: baseline plus the paper's headline scheme.  The full cross product is
#: intentionally split into two exhaustive axes (every workload here, every
#: scheme below) because all non-ISRB schemes are functionally ISRB/refcount
#: variants differing only in cost model -- the cross adds runtime, not
#: coverage.
_SAMPLED_AXIS_SCHEMES = ("baseline", "isrb")
#: Sharing-heavy workloads for the per-scheme axis.
_SAMPLED_AXIS_WORKLOADS = ("spill_reload", "fp_moves")


def _sampled_ratio(workload: str, config) -> float:
    from repro.pipeline.sampling import SampledSimulator, SamplingConfig

    trace = generate_trace(workload, max_ops=4_000, seed=SEED)
    full = simulate_trace(trace, config)
    sampled = SampledSimulator(config, SamplingConfig(**_SAMPLING_KWARGS)) \
        .run_workload(workload, max_ops=4_000, seed=SEED)
    assert sampled.instructions == full.instructions
    return sampled.ipc / full.ipc


@pytest.mark.parametrize("workload", list_workloads())
def test_sampled_ipc_tracks_full_run_per_workload(workload):
    """Sampled IPC within the documented tolerance, every workload."""
    configs = _scheme_configs()
    for scheme in _SAMPLED_AXIS_SCHEMES:
        ratio = _sampled_ratio(workload, configs[scheme])
        assert abs(ratio - 1.0) <= SAMPLED_TOLERANCE, (
            f"{workload} under {scheme}: sampled/full IPC ratio {ratio:.3f} "
            f"outside the documented +/-{SAMPLED_TOLERANCE:.0%} small-scale "
            "tolerance")


#: Long-horizon workloads for the error-budget acceptance: a drifting
#: stride pattern the stopping rule quits early on, and a phase-heavy mix
#: that drives it to its window ceiling.
_ERROR_BUDGET_WORKLOADS = ("long_phase_mix", "long_stride_drift")


def test_error_budget_holds_two_percent_on_long_workloads():
    """Error-budget sampling at +/-2% stays within 2% of the full-detail
    IPC on >=1M-op workloads, and spends fewer detailed micro-ops
    (geomean) than the fixed default geometry."""
    import math

    from repro.pipeline.sampling import SampledSimulator, SamplingConfig

    config = _scheme_configs()["isrb"]
    fixed_geometry = SamplingConfig()
    budget = SamplingConfig(tolerance=0.02)

    def detailed_ops(result) -> int:
        return int(result.stat("sampled_instructions")
                   + result.stat("warmup_instructions")
                   + result.stat("cooldown_instructions"))

    adaptive_detail, fixed_detail = [], []
    for workload in _ERROR_BUDGET_WORKLOADS:
        trace = generate_trace(workload, max_ops=1_000_000, seed=SEED)
        full = simulate_trace(trace, config)
        fixed = SampledSimulator(config, fixed_geometry).run_workload(
            workload, max_ops=1_000_000, seed=SEED)
        adaptive = SampledSimulator(config, budget).run_workload(
            workload, max_ops=1_000_000, seed=SEED)
        assert adaptive.instructions == full.instructions
        ratio = adaptive.ipc / full.ipc
        assert abs(ratio - 1.0) <= 0.02, (
            f"{workload}: error-budget IPC ratio {ratio:.4f} outside +/-2%")
        adaptive_detail.append(detailed_ops(adaptive))
        fixed_detail.append(detailed_ops(fixed))

    geomean_adaptive = math.prod(adaptive_detail) ** (1 / len(adaptive_detail))
    geomean_fixed = math.prod(fixed_detail) ** (1 / len(fixed_detail))
    assert geomean_adaptive < geomean_fixed, (
        f"error budget spent {geomean_adaptive:.0f} detailed micro-ops "
        f"(geomean) vs {geomean_fixed:.0f} for the fixed geometry")


@pytest.mark.parametrize("scheme", sorted(_scheme_configs()))
def test_sampled_ipc_tracks_full_run_per_scheme(scheme):
    """Sampled IPC within the documented tolerance, every tracker scheme."""
    config = _scheme_configs()[scheme]
    for workload in _SAMPLED_AXIS_WORKLOADS:
        ratio = _sampled_ratio(workload, config)
        assert abs(ratio - 1.0) <= SAMPLED_TOLERANCE, (
            f"{workload} under {scheme}: sampled/full IPC ratio {ratio:.3f} "
            f"outside the documented +/-{SAMPLED_TOLERANCE:.0%} small-scale "
            "tolerance")


# ---------------------------------------------------------------------------
# RISC-V frontend differential
# ---------------------------------------------------------------------------

_RISCV_SAMPLE_REL = "examples/rv32i/checksum.bin"
_RISCV_SAMPLE = Path(__file__).resolve().parents[1] / _RISCV_SAMPLE_REL
_RISCV_WORKLOAD = f"riscv:{_RISCV_SAMPLE}"


def test_riscv_functional_state_matches_golden(golden_digests):
    """The lowered sample binary's final state matches the committed digest.

    This pins the whole decode -> lower -> execute chain: an encoding
    change in ``checksum.bin``, a lowering change, or an executor semantics
    change all move this digest.
    """
    golden = golden_digests[f"riscv:{_RISCV_SAMPLE_REL}"]
    assert _final_digest(_RISCV_WORKLOAD) == golden


def test_riscv_functional_core_matches_executor():
    """Fast-forward (FunctionalCore) and Executor agree on lowered RV32I."""
    from repro.isa.functional import FunctionalCore

    image = build_workload(_RISCV_WORKLOAD, seed=SEED)
    executor = Executor(image.program, initial_regs=image.initial_regs,
                        initial_memory=image.initial_memory)
    executor.run(max_ops=MAX_OPS)

    fast = FunctionalCore.from_image(image)
    fast.fast_forward(MAX_OPS)
    assert fast.state_digest() == executor.state_digest()


def test_riscv_all_schemes_commit_identical_state():
    """Every tracker scheme commits the sample binary's trace identically,
    and the paper's headline scheme actually eliminates the sample's move
    chain (the frontend feeds real sharing opportunities, not just NOPs)."""
    trace = generate_trace(_RISCV_WORKLOAD, max_ops=MAX_OPS, seed=SEED)
    results = {name: simulate_trace(trace, config)
               for name, config in _scheme_configs().items()}
    reference = results["baseline"]
    assert reference.instructions == len(trace) == MAX_OPS
    for name, result in results.items():
        assert result.instructions == reference.instructions, (
            f"scheme {name} did not commit the full RV32I trace")
        for stat in COMMIT_INVARIANT_STATS:
            assert result.stat(stat) == reference.stat(stat), (
                f"scheme {name} disagrees with baseline on {stat}")
    assert results["isrb"].stat("committed_eliminated_moves") > 0


def test_riscv_cycle_skipping_is_bit_identical():
    """Event-driven cycle skipping is exact on lowered RV32I code too."""
    from repro.pipeline.core import Core

    trace = generate_trace(_RISCV_WORKLOAD, max_ops=MAX_OPS, seed=SEED)
    for name, config in _scheme_configs().items():
        skipping = Core(config.replace(cycle_skipping=True))
        walking = Core(config.replace(cycle_skipping=False))
        fast = skipping.run(trace)
        slow = walking.run(trace)
        assert fast.cycles == slow.cycles, f"{name}: cycle count diverged"
        assert skipping.snapshot().digest() == walking.snapshot().digest(), (
            f"{name}: micro-architectural state diverges on RV32I code")


def test_riscv_sampled_ipc_tracks_full_run():
    """Two-speed sampling holds its tolerance on the decoded sample binary."""
    configs = _scheme_configs()
    for scheme in _SAMPLED_AXIS_SCHEMES:
        ratio = _sampled_ratio(_RISCV_WORKLOAD, configs[scheme])
        assert abs(ratio - 1.0) <= SAMPLED_TOLERANCE, (
            f"riscv sample under {scheme}: sampled/full IPC ratio "
            f"{ratio:.3f} outside +/-{SAMPLED_TOLERANCE:.0%}")


def test_riscv_imported_trace_replays_identically(tmp_path):
    """riscv trace -> export -> trace: workload replays bit-identically."""
    from repro.isa.trace_io import export_trace
    from repro.pipeline.core import Core

    trace = generate_trace(_RISCV_WORKLOAD, max_ops=MAX_OPS, seed=SEED)
    path = tmp_path / "checksum.jsonl.gz"
    export_trace(trace, path)
    replay = generate_trace(f"trace:{path}", max_ops=MAX_OPS, seed=SEED)

    config = _scheme_configs()["isrb"]
    outcomes = []
    for candidate in (trace, replay):
        core = Core(config)
        result = core.run(candidate)
        outcomes.append((result.cycles, result.instructions, result.stats,
                         core.snapshot().digest()))
    assert outcomes[0] == outcomes[1]


def test_schemes_differ_only_in_cycles():
    """A sharing-heavy workload: schemes disagree on cycles, nothing else."""
    trace = generate_trace("spill_reload", max_ops=MAX_OPS, seed=SEED)
    results = {name: simulate_trace(trace, config)
               for name, config in _scheme_configs().items()}
    cycle_counts = {result.cycles for result in results.values()}
    assert len(cycle_counts) > 1, (
        "expected at least one scheme to change timing on spill_reload")
    committed = {result.instructions for result in results.values()}
    assert committed == {len(trace)}
