"""Differential test layer: all tracker schemes, one committed truth.

Register-sharing schemes may only change *when* work happens (cycles),
never *what* the program computes.  The tests here pin that contract from
three directions:

* every scheme commits exactly the trace (same committed micro-op count,
  same commit-side event counts);
* the functional executor's final architectural register/memory state is
  deterministic and matches a committed golden digest, so a hot-path
  "optimisation" that changes semantics fails loudly;
* cycle counts are the *only* thing allowed to differ between schemes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.grid import SCHEME_PRESETS
from repro.isa.executor import Executor
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate_trace
from repro.workloads import build_workload, generate_trace, list_workloads

MAX_OPS = 2_000
SEED = 1
GOLDEN_PATH = Path(__file__).parent / "golden" / "state_digests.json"

#: Commit-side counters that must not depend on the tracker scheme: they
#: count architectural events of the committed instruction stream.  (Fetch
#: -side counters such as ``conditional_branches`` are *not* invariant: a
#: commit-stage trap refetches the trap-younger ops, and how many times
#: that happens is scheme-dependent timing.)
COMMIT_INVARIANT_STATS = ("committed_loads",)


def _scheme_configs() -> dict[str, CoreConfig]:
    """Baseline plus every tracker scheme at its preset sizing (ME + SMB on)."""
    configs = {"baseline": CoreConfig()}
    for name, preset in SCHEME_PRESETS.items():
        configs[name] = (CoreConfig()
                         .with_tracker(scheme=preset["scheme"],
                                       entries=preset["entries"],
                                       counter_bits=preset["counter_bits"])
                         .with_move_elimination()
                         .with_smb())
    return configs


def _final_digest(workload: str) -> str:
    """Functionally execute a workload and digest the final machine state."""
    image = build_workload(workload, seed=SEED)
    executor = Executor(image.program, initial_regs=image.initial_regs,
                        initial_memory=image.initial_memory)
    executor.run(max_ops=MAX_OPS)
    return executor.state_digest()


@pytest.fixture(scope="module")
def golden_digests() -> dict[str, str]:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("workload", list_workloads())
def test_all_schemes_commit_identical_state(workload):
    """Every scheme commits the full trace with identical commit-side counts."""
    trace = generate_trace(workload, max_ops=MAX_OPS, seed=SEED)
    results = {name: simulate_trace(trace, config)
               for name, config in _scheme_configs().items()}

    reference = results["baseline"]
    assert reference.instructions == len(trace)
    for name, result in results.items():
        assert result.instructions == reference.instructions, (
            f"{workload}: scheme {name} committed {result.instructions} micro-ops, "
            f"baseline committed {reference.instructions}")
        for stat in COMMIT_INVARIANT_STATS:
            assert result.stat(stat) == reference.stat(stat), (
                f"{workload}: scheme {name} disagrees with baseline on {stat}")
        # Sanity: the simulation made progress and terminated by committing
        # everything, not by tripping the deadlock guard.
        assert result.cycles > 0


@pytest.mark.parametrize("workload", list_workloads())
def test_functional_state_is_deterministic(workload):
    """Two functional executions produce bit-identical architectural state."""
    assert _final_digest(workload) == _final_digest(workload)


@pytest.mark.parametrize("workload", list_workloads())
def test_functional_state_matches_golden(workload, golden_digests):
    """The final architectural state matches the committed golden digest.

    Regenerate with ``python tests/golden/regenerate.py`` -- but only when
    a workload's *program* intentionally changed.  An unintentional digest
    change means an optimisation altered functional semantics.
    """
    assert workload in golden_digests, (
        f"no golden digest for {workload}; run tests/golden/regenerate.py")
    assert _final_digest(workload) == golden_digests[workload]


def test_schemes_differ_only_in_cycles():
    """A sharing-heavy workload: schemes disagree on cycles, nothing else."""
    trace = generate_trace("spill_reload", max_ops=MAX_OPS, seed=SEED)
    results = {name: simulate_trace(trace, config)
               for name, config in _scheme_configs().items()}
    cycle_counts = {result.cycles for result in results.values()}
    assert len(cycle_counts) > 1, (
        "expected at least one scheme to change timing on spill_reload")
    committed = {result.instructions for result in results.values()}
    assert committed == {len(trace)}
