"""Regenerate the golden artifacts under ``tests/golden/``.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regenerate.py

Only regenerate when a workload's program or the sweep table format has
*intentionally* changed; an unexpected diff in these files means functional
semantics drifted.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent


def regenerate_state_digests(max_ops: int = 2_000, seed: int = 1) -> None:
    from repro.isa.executor import Executor
    from repro.workloads import build_workload, list_workloads

    def digest_of(name: str) -> str:
        image = build_workload(name, seed=seed)
        executor = Executor(image.program, initial_regs=image.initial_regs,
                            initial_memory=image.initial_memory)
        executor.run(max_ops=max_ops)
        return executor.state_digest()

    digests = {workload: digest_of(workload) for workload in list_workloads()}
    # The checked-in RV32I sample binary, keyed by its repo-relative name so
    # the golden file is stable across checkouts (built via absolute path so
    # regeneration works from any cwd).
    sample = "examples/rv32i/checksum.bin"
    digests[f"riscv:{sample}"] = digest_of(
        f"riscv:{GOLDEN_DIR.parents[1] / sample}")
    path = GOLDEN_DIR / "state_digests.json"
    path.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path} ({len(digests)} workloads)")


def regenerate_sweep_snapshot() -> None:
    from repro.experiments.grid import SweepSpec
    from repro.experiments.runner import run_sweep

    spec = SweepSpec(
        schemes=("isrb", "refcount_checkpoint"),
        workloads=("spill_reload", "move_chain"),
        max_ops=2_000,
        seed=1,
    )
    report = run_sweep(spec, workers=1, cache_dir=None)
    path = GOLDEN_DIR / "sweep_small.md"
    path.write_text(report.to_markdown() + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    regenerate_state_digests()
    regenerate_sweep_snapshot()
