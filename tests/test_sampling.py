"""Tests for the two-speed engine: FunctionalCore, snapshots, SampledSimulator.

The load-bearing contracts:

* the compiled fast-forward path and the handler-based record path retire
  bit-identical architectural state, and ``record`` produces micro-ops
  field-identical to an uninterrupted :class:`Executor` run;
* architectural snapshot -> restore -> resume equals uninterrupted
  execution (digest equality);
* the sampled driver retires exactly ``max_ops`` micro-ops, reports the
  sampling statistics, and is fully deterministic;
* the CLI flags reach the sampled path.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.cli import main as cli_main
from repro.isa.executor import ExecutionLimitExceeded, Executor
from repro.isa.functional import FunctionalCore
from repro.isa.program import ProgramBuilder
from repro.isa.registers import int_reg
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core
from repro.pipeline.sampling import SampledSimulator, SamplingConfig
from repro.workloads import build_workload, generate_trace

MAX_OPS = 4_000
SAMPLING = SamplingConfig(period=1_000, window=300, warmup=200, cooldown=150)


def _executor_for(image) -> Executor:
    return Executor(image.program, initial_regs=image.initial_regs,
                    initial_memory=image.initial_memory)


# ---------------------------------------------------------------------------
# FunctionalCore
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", ["move_chain", "deep_recursion", "fp_mixed"])
def test_fast_forward_matches_executor_state(workload):
    image = build_workload(workload, seed=1)
    executor = _executor_for(image)
    executor.run(max_ops=MAX_OPS)
    core = FunctionalCore.from_image(image)
    assert core.fast_forward(MAX_OPS) == MAX_OPS
    assert core.retired == MAX_OPS
    assert core.state_digest() == executor.state_digest()


@pytest.mark.parametrize("workload", ["partial_moves", "stack_args", "fp_stencil"])
def test_record_produces_executor_identical_micro_ops(workload):
    image = build_workload(workload, seed=1)
    reference = _executor_for(image).run(max_ops=MAX_OPS)
    core = FunctionalCore.from_image(image)
    position = 0
    for chunk, mode in ((700, "ff"), (650, "record"), (900, "ff"), (800, "record")):
        if mode == "ff":
            assert core.fast_forward(chunk) == chunk
        else:
            window = core.record(chunk)
            assert len(window) == chunk
            for offset, op in enumerate(window.ops):
                expected = dataclasses.replace(reference.ops[position + offset],
                                               seq=offset)
                assert op == expected
        position += chunk
    # Interleaving recording with fast-forward never perturbs the state.
    assert core.state_digest() == _run_digest(image, position)


def _run_digest(image, max_ops: int) -> str:
    executor = _executor_for(image)
    executor.run(max_ops=max_ops)
    return executor.state_digest()


def test_fast_forward_stops_at_halt():
    builder = ProgramBuilder("finite")
    r = int_reg
    builder.movi(r(0), 3)
    builder.label("loop")
    builder.addi(r(0), r(0), -1)
    builder.bnz(r(0), "loop")
    builder.halt()
    program = builder.build()
    core = FunctionalCore(program)
    retired = core.fast_forward(10_000)
    assert core.halted and retired == 7          # movi + 3 x (addi, bnz)
    assert core.fast_forward(10) == 0            # halted: nothing more
    assert len(core.record(10)) == 0


def test_fast_forward_raises_on_fall_off_end():
    builder = ProgramBuilder("no_halt")
    builder.addi(int_reg(0), int_reg(0), 1)
    builder.halt()
    program = builder.build()
    program.instructions.pop()                   # surgically drop the halt
    core = FunctionalCore(program)
    with pytest.raises(ExecutionLimitExceeded):
        core.fast_forward(10)


def test_arch_snapshot_resume_equals_uninterrupted_run():
    image = build_workload("hash_update", seed=1)
    split = 1_700
    first = FunctionalCore.from_image(image)
    first.fast_forward(split)
    snapshot = first.to_snapshot()
    resumed = FunctionalCore.from_snapshot(image.program, snapshot)
    assert resumed.retired == split
    resumed.fast_forward(MAX_OPS - split)
    assert resumed.state_digest() == _run_digest(image, MAX_OPS)
    # The donor core is unaffected and can continue too.
    first.fast_forward(MAX_OPS - split)
    assert first.state_digest() == resumed.state_digest()


def test_arch_snapshot_rejects_foreign_program():
    image = build_workload("branchy", seed=1)
    other = build_workload("move_chain", seed=1)
    snapshot = FunctionalCore.from_image(image).to_snapshot()
    with pytest.raises(ValueError, match="program"):
        FunctionalCore.from_image(other).load_snapshot(snapshot)


# ---------------------------------------------------------------------------
# Core micro-architectural snapshots
# ---------------------------------------------------------------------------


def test_core_snapshot_digest_is_deterministic():
    trace = generate_trace("spill_reload", max_ops=1_500, seed=1)
    config = CoreConfig().with_move_elimination().with_smb()
    core = Core(config)
    core.run(trace)
    assert core.snapshot().digest() == core.snapshot().digest()


def test_core_snapshot_rejects_mismatched_machine():
    trace = generate_trace("spill_reload", max_ops=1_000, seed=1)
    config = CoreConfig().with_move_elimination().with_smb()
    core = Core(config)
    core.run(trace)
    snapshot = core.snapshot()
    other = Core(CoreConfig().with_tracker("refcount", entries=None))
    with pytest.raises(ValueError, match="cannot be restored"):
        other.run(trace, resume=snapshot)


# ---------------------------------------------------------------------------
# SamplingConfig / SampledSimulator
# ---------------------------------------------------------------------------


def test_sampling_config_validation():
    with pytest.raises(ValueError):
        SamplingConfig(period=100, window=0)
    with pytest.raises(ValueError):
        SamplingConfig(period=100, window=50, warmup=-1)
    with pytest.raises(ValueError):
        SamplingConfig(period=500, window=400, warmup=100, cooldown=100)
    assert SamplingConfig(period=600, window=400, warmup=100,
                          cooldown=100).detailed_fraction == 1.0


def test_sampled_run_retires_exactly_max_ops():
    config = CoreConfig().with_move_elimination().with_smb()
    result = SampledSimulator(config, SAMPLING).run_workload(
        "move_chain", max_ops=MAX_OPS, seed=1)
    assert result.instructions == MAX_OPS
    assert result.cycles > 0
    assert result.stat("sampling_windows") == 4          # one per 1000-op period
    detailed = (result.stat("sampled_instructions")
                + result.stat("warmup_instructions")
                + result.stat("cooldown_instructions"))
    assert detailed + result.stat("fastforwarded_instructions") == MAX_OPS
    assert result.stat("warmup_instructions") == 4 * SAMPLING.warmup
    assert result.stat("cooldown_instructions") == 4 * SAMPLING.cooldown
    assert result.stat("sampling_ipc_ci95_low") <= \
        result.stat("sampling_ipc_mean") <= result.stat("sampling_ipc_ci95_high")


def test_sampled_run_is_deterministic():
    config = CoreConfig().with_move_elimination().with_smb()
    first = SampledSimulator(config, SAMPLING).run_workload(
        "spill_reload", max_ops=MAX_OPS, seed=1)
    second = SampledSimulator(config, SAMPLING).run_workload(
        "spill_reload", max_ops=MAX_OPS, seed=1)
    assert first.to_dict() == second.to_dict()


def test_sampled_rejects_workload_that_halts_too_early():
    builder = ProgramBuilder("tiny")
    builder.addi(int_reg(0), int_reg(0), 1)
    builder.halt()
    from repro.workloads.base import WorkloadImage

    image = WorkloadImage(program=builder.build())
    simulator = SampledSimulator(CoreConfig(), SamplingConfig(
        period=1_000, window=100, warmup=50, cooldown=50))
    with pytest.raises(ValueError, match="halted"):
        simulator.run_image(image, "tiny", max_ops=1_000)


def test_sampled_rejects_budget_smaller_than_warmup():
    """A too-small max_ops is diagnosed as a geometry problem, not a halt."""
    simulator = SampledSimulator(CoreConfig(), SamplingConfig(
        period=10_000, window=2_000, warmup=500))
    with pytest.raises(ValueError, match="no room for a measured window"):
        simulator.run_workload("move_chain", max_ops=400, seed=1)


def test_full_detail_windowing_commits_everything():
    """period == warmup + window + cooldown: every op goes through the core."""
    config = CoreConfig().with_move_elimination().with_smb()
    sampling = SamplingConfig(period=500, window=300, warmup=100, cooldown=100)
    result = SampledSimulator(config, sampling).run_workload(
        "load_load", max_ops=2_000, seed=1)
    assert result.instructions == 2_000
    assert result.stat("fastforwarded_instructions") == 0


# ---------------------------------------------------------------------------
# Sampling statistics (the n=1 / normal-approximation bugfixes)
# ---------------------------------------------------------------------------


def test_single_window_omits_degenerate_ci_keys():
    """n=1 has no sample variance: the std/CI keys must be absent, not 0."""
    result = SampledSimulator(CoreConfig(), SamplingConfig(
        period=1_000, window=300, warmup=200, cooldown=150)).run_workload(
        "move_chain", max_ops=1_000, seed=1)
    assert result.stat("sampling_windows") == 1
    for key in ("sampling_ipc_std", "sampling_ipc_ci95_low",
                "sampling_ipc_ci95_high", "sampling_ipc_rel_ci95"):
        assert key not in result.stats, key
    assert result.stat("sampling_ipc_mean") > 0
    assert result.stat("sampling_stop_reason_code") == 0   # fixed geometry


def test_ci_uses_student_t_not_normal_approximation():
    """At 4 windows the half-width must use t(3)=3.182, not z=1.96."""
    import math

    from repro.common.statistics import t_critical_95

    config = CoreConfig().with_move_elimination().with_smb()
    result = SampledSimulator(config, SAMPLING).run_workload(
        "spill_reload", max_ops=MAX_OPS, seed=1)
    count = int(result.stat("sampling_windows"))
    assert count == 4
    mean = result.stat("sampling_ipc_mean")
    std = result.stat("sampling_ipc_std")
    half = result.stat("sampling_ipc_ci95_high") - mean
    expected = t_critical_95(count - 1) * std / math.sqrt(count)
    assert half == pytest.approx(expected, rel=1e-12)
    assert t_critical_95(count - 1) == pytest.approx(3.182)
    normal_half = 1.96 * std / math.sqrt(count)
    assert half > normal_half                    # the old z-interval was narrower
    assert result.stat("sampling_ipc_rel_ci95") == pytest.approx(half / mean)


def test_window_ipc_mean_weights_by_retired_instructions():
    """A budget-truncated final window must not count as a full vote."""
    from repro.common.statistics import weighted_mean_std
    from repro.pipeline.sampling import window_samples

    config = CoreConfig()
    sampling = SamplingConfig(period=1_000, window=300, warmup=200, cooldown=150)
    simulator = SampledSimulator(config, sampling)
    image = build_workload("branchy", seed=1)
    plan = simulator.plan(image, "branchy", 1_650)
    result = simulator.execute_plan(plan)
    samples = window_samples(plan, config)
    assert len(samples) == 2
    instructions = [ops for ops, _ in samples]
    assert instructions[0] == 300 and instructions[1] < 300   # truncated tail
    ipcs = [ops / cycles for ops, cycles in samples]
    weighted, _ = weighted_mean_std(ipcs, [float(n) for n in instructions])
    assert result.stat("sampling_ipc_mean") == pytest.approx(weighted)
    unweighted = sum(ipcs) / len(ipcs)
    if abs(ipcs[0] - ipcs[1]) > 1e-9:
        assert result.stat("sampling_ipc_mean") != pytest.approx(
            unweighted, abs=1e-12)


def test_rejects_budget_where_every_window_is_truncated():
    """All-truncated geometry is a silent-bias trap: reject it loudly."""
    simulator = SampledSimulator(CoreConfig(), SamplingConfig(
        period=1_000, window=300, warmup=200))
    with pytest.raises(ValueError, match="fits no whole measured window"):
        simulator.run_workload("move_chain", max_ops=450, seed=1)


def test_weighted_mean_std_and_t_table():
    from repro.common.statistics import t_critical_95, weighted_mean_std

    mean, std = weighted_mean_std([2.0], [10.0])
    assert mean == 2.0 and std is None           # n=1: no sample variance
    mean, std = weighted_mean_std([1.0, 3.0], [1.0, 1.0])
    assert mean == 2.0 and std == pytest.approx(2.0 ** 0.5)
    mean, _ = weighted_mean_std([1.0, 3.0], [3.0, 1.0])
    assert mean == 1.5                           # weights pull the mean down
    with pytest.raises(ValueError):
        weighted_mean_std([1.0], [0.0])
    with pytest.raises(ValueError):
        weighted_mean_std([], [])
    assert t_critical_95(1) == pytest.approx(12.706)
    assert t_critical_95(29) == pytest.approx(2.045)
    assert t_critical_95(30) == 1.96             # large-sample normal regime
    with pytest.raises(ValueError):
        t_critical_95(0)


# ---------------------------------------------------------------------------
# Error-budget (adaptive) sampling
# ---------------------------------------------------------------------------

BUDGET = SamplingConfig(period=1_000, window=300, warmup=200, cooldown=150,
                        tolerance=0.05, min_windows=2, max_windows=8)


def test_sampling_config_validates_error_budget_knobs():
    def budget(**kwargs):
        return SamplingConfig(period=1_000, window=300, warmup=200,
                              cooldown=150, **kwargs)
    with pytest.raises(ValueError, match="tolerance"):
        budget(tolerance=0.0)
    with pytest.raises(ValueError, match="tolerance"):
        budget(tolerance=1.5)
    with pytest.raises(ValueError, match="min_windows"):
        budget(tolerance=0.05, min_windows=1)
    with pytest.raises(ValueError, match="max_windows"):
        budget(tolerance=0.05, min_windows=4, max_windows=3)


def test_sampling_config_fingerprint_is_stable_at_defaults():
    """Pre-error-budget fingerprints (store keys, meta) must not change."""
    fixed = SamplingConfig(period=1_000, window=300, warmup=200, cooldown=150)
    assert fixed.to_dict() == {"period": 1_000, "window": 300,
                               "warmup": 200, "cooldown": 150}
    assert repr(fixed) == ("SamplingConfig(period=1000, window=300, "
                           "warmup=200, cooldown=150, warm_gaps=True)")
    budget = dataclasses.replace(fixed, tolerance=0.05)
    assert budget.to_dict()["tolerance"] == 0.05
    assert "tolerance=0.05" in repr(budget)
    assert repr(budget) != repr(fixed)


def test_adaptive_run_meets_tolerance_or_hits_ceiling():
    config = CoreConfig().with_move_elimination().with_smb()
    result = SampledSimulator(config, BUDGET).run_workload(
        "long_phase_mix", max_ops=50_000, seed=1)
    windows = int(result.stat("sampling_windows"))
    assert BUDGET.min_windows <= windows <= BUDGET.max_windows
    assert result.stat("sampling_tolerance") == BUDGET.tolerance
    assert result.stat("sampling_probe_rounds") >= 1
    assert result.stat("sampling_probe_instructions") > 0
    code = result.stat("sampling_stop_reason_code")
    from repro.telemetry.metrics import sampling_stop_reason

    reason = sampling_stop_reason(code)
    assert reason in ("tolerance", "ceiling", "halted")
    if reason == "tolerance":
        assert result.stat("sampling_ipc_rel_ci95") <= BUDGET.tolerance


def test_adaptive_run_retires_exactly_max_ops():
    result = SampledSimulator(CoreConfig(), BUDGET).run_workload(
        "long_phase_mix", max_ops=50_000, seed=1)
    assert result.instructions == 50_000
    detailed = (result.stat("sampled_instructions")
                + result.stat("warmup_instructions")
                + result.stat("cooldown_instructions"))
    assert detailed + result.stat("fastforwarded_instructions") == 50_000


def test_adaptive_plan_probes_on_scheme_stripped_machine():
    """The stopping decision must not depend on the scheme under test, or
    the farm (planning on base_config) and an independent run (planning on
    the job config) would freeze different plans."""
    base = SampledSimulator(CoreConfig(), BUDGET)
    isrb = SampledSimulator(
        CoreConfig().with_move_elimination().with_smb(), BUDGET)
    image = build_workload("long_phase_mix", seed=1)
    plan_base = base.plan(image, "long_phase_mix", 50_000)
    plan_isrb = isrb.plan(image, "long_phase_mix", 50_000)
    assert plan_base.stretches == plan_isrb.stretches
    assert plan_base.stop_reason == plan_isrb.stop_reason
    assert plan_base.probe_rounds == plan_isrb.probe_rounds
    assert repr(base.probe_config()) == repr(isrb.probe_config())


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_run_sampled(capsys):
    code = cli_main(["run", "move_chain", "--max-ops", "4000",
                     "--sample-period", "1000", "--sample-window", "300",
                     "--warmup", "150"])
    assert code == 0
    out = capsys.readouterr().out
    assert "sampled:" in out and "windows" in out


def test_cli_run_error_budget(capsys):
    code = cli_main(["run", "long_phase_mix", "--max-ops", "50000",
                     "--ipc-tolerance", "0.05", "--sample-period", "1000",
                     "--sample-window", "300", "--warmup", "200"])
    assert code == 0
    out = capsys.readouterr().out
    assert "error budget: +/-5% IPC" in out
    assert "stopped on" in out


def test_cli_run_single_window_reports_ci_na(capsys):
    code = cli_main(["run", "move_chain", "--max-ops", "1000",
                     "--sample-period", "1000", "--sample-window", "300",
                     "--warmup", "200"])
    assert code == 0
    assert "CI n/a (single window)" in capsys.readouterr().out


def test_cli_sweep_error_budget(tmp_path, capsys):
    code = cli_main([
        "sweep", "--schemes", "isrb", "--workloads", "long_phase_mix",
        "--max-ops", "50000", "--ipc-tolerance", "0.05",
        "--sample-window", "300", "--warmup", "200", "--quiet",
        "--cache-dir", "", "--out-dir", str(tmp_path)])
    assert code == 0
    data = json.loads((tmp_path / "sweep.json").read_text())
    assert data["meta"]["sampling"]["tolerance"] == 0.05
    rows = [row for row in data["results"]
            if row["workload"] == "long_phase_mix"]
    assert rows and all(
        row["stats"]["sampling_windows"] >= 2 for row in rows)


def test_cli_run_sampled_rejects_bad_geometry(capsys):
    code = cli_main(["run", "move_chain", "--sample-period", "100",
                     "--sample-window", "4000"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_cli_sweep_sampled(tmp_path, capsys):
    code = cli_main([
        "sweep", "--schemes", "isrb", "--workloads", "move_chain",
        "--max-ops", "3000", "--sample-period", "1000",
        "--sample-window", "300", "--warmup", "200", "--quiet",
        "--cache-dir", "", "--out-dir", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "sweep.json").exists()
    assert "move_chain" in capsys.readouterr().out
