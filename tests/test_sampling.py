"""Tests for the two-speed engine: FunctionalCore, snapshots, SampledSimulator.

The load-bearing contracts:

* the compiled fast-forward path and the handler-based record path retire
  bit-identical architectural state, and ``record`` produces micro-ops
  field-identical to an uninterrupted :class:`Executor` run;
* architectural snapshot -> restore -> resume equals uninterrupted
  execution (digest equality);
* the sampled driver retires exactly ``max_ops`` micro-ops, reports the
  sampling statistics, and is fully deterministic;
* the CLI flags reach the sampled path.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.cli import main as cli_main
from repro.isa.executor import ExecutionLimitExceeded, Executor
from repro.isa.functional import FunctionalCore
from repro.isa.program import ProgramBuilder
from repro.isa.registers import int_reg
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core
from repro.pipeline.sampling import SampledSimulator, SamplingConfig
from repro.workloads import build_workload, generate_trace

MAX_OPS = 4_000
SAMPLING = SamplingConfig(period=1_000, window=300, warmup=200, cooldown=150)


def _executor_for(image) -> Executor:
    return Executor(image.program, initial_regs=image.initial_regs,
                    initial_memory=image.initial_memory)


# ---------------------------------------------------------------------------
# FunctionalCore
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload", ["move_chain", "deep_recursion", "fp_mixed"])
def test_fast_forward_matches_executor_state(workload):
    image = build_workload(workload, seed=1)
    executor = _executor_for(image)
    executor.run(max_ops=MAX_OPS)
    core = FunctionalCore.from_image(image)
    assert core.fast_forward(MAX_OPS) == MAX_OPS
    assert core.retired == MAX_OPS
    assert core.state_digest() == executor.state_digest()


@pytest.mark.parametrize("workload", ["partial_moves", "stack_args", "fp_stencil"])
def test_record_produces_executor_identical_micro_ops(workload):
    image = build_workload(workload, seed=1)
    reference = _executor_for(image).run(max_ops=MAX_OPS)
    core = FunctionalCore.from_image(image)
    position = 0
    for chunk, mode in ((700, "ff"), (650, "record"), (900, "ff"), (800, "record")):
        if mode == "ff":
            assert core.fast_forward(chunk) == chunk
        else:
            window = core.record(chunk)
            assert len(window) == chunk
            for offset, op in enumerate(window.ops):
                expected = dataclasses.replace(reference.ops[position + offset],
                                               seq=offset)
                assert op == expected
        position += chunk
    # Interleaving recording with fast-forward never perturbs the state.
    assert core.state_digest() == _run_digest(image, position)


def _run_digest(image, max_ops: int) -> str:
    executor = _executor_for(image)
    executor.run(max_ops=max_ops)
    return executor.state_digest()


def test_fast_forward_stops_at_halt():
    builder = ProgramBuilder("finite")
    r = int_reg
    builder.movi(r(0), 3)
    builder.label("loop")
    builder.addi(r(0), r(0), -1)
    builder.bnz(r(0), "loop")
    builder.halt()
    program = builder.build()
    core = FunctionalCore(program)
    retired = core.fast_forward(10_000)
    assert core.halted and retired == 7          # movi + 3 x (addi, bnz)
    assert core.fast_forward(10) == 0            # halted: nothing more
    assert len(core.record(10)) == 0


def test_fast_forward_raises_on_fall_off_end():
    builder = ProgramBuilder("no_halt")
    builder.addi(int_reg(0), int_reg(0), 1)
    builder.halt()
    program = builder.build()
    program.instructions.pop()                   # surgically drop the halt
    core = FunctionalCore(program)
    with pytest.raises(ExecutionLimitExceeded):
        core.fast_forward(10)


def test_arch_snapshot_resume_equals_uninterrupted_run():
    image = build_workload("hash_update", seed=1)
    split = 1_700
    first = FunctionalCore.from_image(image)
    first.fast_forward(split)
    snapshot = first.to_snapshot()
    resumed = FunctionalCore.from_snapshot(image.program, snapshot)
    assert resumed.retired == split
    resumed.fast_forward(MAX_OPS - split)
    assert resumed.state_digest() == _run_digest(image, MAX_OPS)
    # The donor core is unaffected and can continue too.
    first.fast_forward(MAX_OPS - split)
    assert first.state_digest() == resumed.state_digest()


def test_arch_snapshot_rejects_foreign_program():
    image = build_workload("branchy", seed=1)
    other = build_workload("move_chain", seed=1)
    snapshot = FunctionalCore.from_image(image).to_snapshot()
    with pytest.raises(ValueError, match="program"):
        FunctionalCore.from_image(other).load_snapshot(snapshot)


# ---------------------------------------------------------------------------
# Core micro-architectural snapshots
# ---------------------------------------------------------------------------


def test_core_snapshot_digest_is_deterministic():
    trace = generate_trace("spill_reload", max_ops=1_500, seed=1)
    config = CoreConfig().with_move_elimination().with_smb()
    core = Core(config)
    core.run(trace)
    assert core.snapshot().digest() == core.snapshot().digest()


def test_core_snapshot_rejects_mismatched_machine():
    trace = generate_trace("spill_reload", max_ops=1_000, seed=1)
    config = CoreConfig().with_move_elimination().with_smb()
    core = Core(config)
    core.run(trace)
    snapshot = core.snapshot()
    other = Core(CoreConfig().with_tracker("refcount", entries=None))
    with pytest.raises(ValueError, match="cannot be restored"):
        other.run(trace, resume=snapshot)


# ---------------------------------------------------------------------------
# SamplingConfig / SampledSimulator
# ---------------------------------------------------------------------------


def test_sampling_config_validation():
    with pytest.raises(ValueError):
        SamplingConfig(period=100, window=0)
    with pytest.raises(ValueError):
        SamplingConfig(period=100, window=50, warmup=-1)
    with pytest.raises(ValueError):
        SamplingConfig(period=500, window=400, warmup=100, cooldown=100)
    assert SamplingConfig(period=600, window=400, warmup=100,
                          cooldown=100).detailed_fraction == 1.0


def test_sampled_run_retires_exactly_max_ops():
    config = CoreConfig().with_move_elimination().with_smb()
    result = SampledSimulator(config, SAMPLING).run_workload(
        "move_chain", max_ops=MAX_OPS, seed=1)
    assert result.instructions == MAX_OPS
    assert result.cycles > 0
    assert result.stat("sampling_windows") == 4          # one per 1000-op period
    detailed = (result.stat("sampled_instructions")
                + result.stat("warmup_instructions")
                + result.stat("cooldown_instructions"))
    assert detailed + result.stat("fastforwarded_instructions") == MAX_OPS
    assert result.stat("warmup_instructions") == 4 * SAMPLING.warmup
    assert result.stat("cooldown_instructions") == 4 * SAMPLING.cooldown
    assert result.stat("sampling_ipc_ci95_low") <= \
        result.stat("sampling_ipc_mean") <= result.stat("sampling_ipc_ci95_high")


def test_sampled_run_is_deterministic():
    config = CoreConfig().with_move_elimination().with_smb()
    first = SampledSimulator(config, SAMPLING).run_workload(
        "spill_reload", max_ops=MAX_OPS, seed=1)
    second = SampledSimulator(config, SAMPLING).run_workload(
        "spill_reload", max_ops=MAX_OPS, seed=1)
    assert first.to_dict() == second.to_dict()


def test_sampled_rejects_workload_that_halts_too_early():
    builder = ProgramBuilder("tiny")
    builder.addi(int_reg(0), int_reg(0), 1)
    builder.halt()
    from repro.workloads.base import WorkloadImage

    image = WorkloadImage(program=builder.build())
    simulator = SampledSimulator(CoreConfig(), SamplingConfig(
        period=1_000, window=100, warmup=50, cooldown=50))
    with pytest.raises(ValueError, match="halted"):
        simulator.run_image(image, "tiny", max_ops=1_000)


def test_sampled_rejects_budget_smaller_than_warmup():
    """A too-small max_ops is diagnosed as a geometry problem, not a halt."""
    simulator = SampledSimulator(CoreConfig(), SamplingConfig(
        period=10_000, window=2_000, warmup=500))
    with pytest.raises(ValueError, match="no room for a measured window"):
        simulator.run_workload("move_chain", max_ops=400, seed=1)


def test_full_detail_windowing_commits_everything():
    """period == warmup + window + cooldown: every op goes through the core."""
    config = CoreConfig().with_move_elimination().with_smb()
    sampling = SamplingConfig(period=500, window=300, warmup=100, cooldown=100)
    result = SampledSimulator(config, sampling).run_workload(
        "load_load", max_ops=2_000, seed=1)
    assert result.instructions == 2_000
    assert result.stat("fastforwarded_instructions") == 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_run_sampled(capsys):
    code = cli_main(["run", "move_chain", "--max-ops", "4000",
                     "--sample-period", "1000", "--sample-window", "300",
                     "--warmup", "150"])
    assert code == 0
    out = capsys.readouterr().out
    assert "sampled:" in out and "windows" in out


def test_cli_run_sampled_rejects_bad_geometry(capsys):
    code = cli_main(["run", "move_chain", "--sample-period", "100",
                     "--sample-window", "4000"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_cli_sweep_sampled(tmp_path, capsys):
    code = cli_main([
        "sweep", "--schemes", "isrb", "--workloads", "move_chain",
        "--max-ops", "3000", "--sample-period", "1000",
        "--sample-window", "300", "--warmup", "200", "--quiet",
        "--cache-dir", "", "--out-dir", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "sweep.json").exists()
    assert "move_chain" in capsys.readouterr().out
