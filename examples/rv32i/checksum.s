# checksum.s -- the checked-in RV32I sample program.
#
# Fletcher-style checksum over a 64-byte table, computed byte-by-byte
# through a helper function, repeated for a large number of rounds (the
# simulator's --max-ops budget truncates the run, like every synthetic
# workload).  Exercises: calls/returns, nested loops, signed compares,
# byte loads, sub-word stores, shifts and pc-relative-free data addressing.
#
# Build:  python examples/rv32i/build.py      (writes checksum.bin)
# Run:    repro run riscv:examples/rv32i/checksum.bin
#
# Register use: s0 table base, s1 output base, a0/a1 checksum accumulators,
# t0 round counter, t1 byte index, a5 scratch result.

start:
    la   s0, table
    la   s1, out
    li   a0, 0              # fletcher low
    li   a1, 0              # fletcher high
    li   t0, 1              # round counter
    li   t2, 100000         # rounds (truncated by --max-ops long before)

round:
    li   t1, 0              # byte index
byte_loop:
    add  a2, s0, t1
    lbu  a3, 0(a2)          # table byte
    jal  ra, mix            # a5 = mix(a3, t1)
    mv   a4, a0             # eliminable move chain: shuffle the
    add  a0, a4, a5         # accumulators through a4 (compiler idiom)
    mv   a4, a1
    add  a1, a4, a0
    addi t1, t1, 1
    slti a4, t1, 64         # signed compare drives the inner loop
    bnez a4, byte_loop

    # fold the high accumulator and store the running digest
    srli a4, a1, 16
    xor  a1, a1, a4
    sw   a0, 0(s1)
    sw   a1, 4(s1)
    sb   a0, 8(s1)          # sub-word stores: low byte and halfword
    sh   a1, 10(s1)
    lh   a6, 10(s1)         # read the halfword back (sign-extending)
    blt  a6, zero, negative # signed branch on the reloaded halfword
    addi a0, a0, 1
negative:
    # perturb the table so rounds differ: table[round % 64] ^= low byte
    andi a2, t0, 63
    add  a2, s0, a2
    lbu  a3, 0(a2)
    xor  a3, a3, a0
    sb   a3, 0(a2)

    addi t0, t0, 1
    blt  t0, t2, round
    ecall                   # syscall-lite exit

# a5 = ((byte << 3) - byte + index) & 0xffff, via a few ALU shapes
mix:
    slli a5, a3, 3
    sub  a5, a5, a3
    add  a5, a5, t1
    li   a7, 0xffff
    and  a5, a5, a7
    ret

table:
    .word 0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c
    .word 0x13121110, 0x17161514, 0x1b1a1918, 0x1f1e1d1c
    .word 0x23222120, 0x27262524, 0x2b2a2928, 0x2f2e2d2c
    .word 0x33323130, 0x37363534, 0x3b3a3938, 0x3f3e3d3c
out:
    .word 0, 0, 0
