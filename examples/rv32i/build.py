#!/usr/bin/env python
"""Rebuild checksum.bin from checksum.s with the in-tree assembler.

Usage (from the repository root)::

    PYTHONPATH=src python examples/rv32i/build.py

The binary is checked in so users (and CI) can run the sample without an
assembly step; run this after editing checksum.s and commit both files.
"""

from __future__ import annotations

import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent.parent / "src"))

from repro.isa.riscv import assemble  # noqa: E402


def main() -> int:
    source = HERE / "checksum.s"
    target = HERE / "checksum.bin"
    blob = assemble(source.read_text())
    target.write_bytes(blob)
    print(f"assembled {source.name}: {len(blob)} bytes -> {target}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
