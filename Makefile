# Convenience targets; everything is plain `python -m` underneath.
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test docs bench bench-gate paper paper-smoke clean

test:
	$(PYTHON) -m pytest -x -q

docs:  ## doctest + link-check gate for README/docs/DESIGN
	$(PYTHON) -m pytest -q tests/test_docs.py

bench:
	$(PYTHON) -m repro bench

bench-gate:
	$(PYTHON) -m repro bench --smoke --baseline BENCH_core.json

paper:
	$(PYTHON) -m repro paper

paper-smoke:
	$(PYTHON) -m repro paper --smoke

clean:  ## remove bytecode and regenerable artifacts (never sources)
	find . -type d -name __pycache__ -prune -exec rm -rf {} +
	rm -rf .pytest_cache .trace_cache sweep_out artifacts coverage.xml
