"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs keep working on environments whose setuptools/pip
combination predates PEP 660 editable wheels (no ``wheel`` package needed).
"""

from setuptools import setup

setup()
